//! Natural-loop detection and the loop nesting forest.
//!
//! A back edge is an edge `latch → header` where `header` dominates
//! `latch`; the natural loop of a header is the union, over its back edges,
//! of all blocks that reach the latch without passing through the header.
//! Loops sharing a header are merged. The forest orders loops by strict
//! block-set containment.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::module::{BlockId, Function};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Identifies a loop within one function's [`LoopForest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LoopId(pub u32);

impl LoopId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loop{}", self.0)
    }
}

/// One natural loop.
#[derive(Debug, Clone)]
pub struct Loop {
    /// This loop's id.
    pub id: LoopId,
    /// The header block (target of the back edges).
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub blocks: BTreeSet<BlockId>,
    /// Sources of back edges into the header.
    pub latches: Vec<BlockId>,
    /// Edges `(from, to)` leaving the loop (`from` inside, `to` outside).
    pub exit_edges: Vec<(BlockId, BlockId)>,
    /// Parent loop in the nesting forest.
    pub parent: Option<LoopId>,
    /// Directly nested loops.
    pub children: Vec<LoopId>,
    /// Nesting depth; top-level loops have depth 0.
    pub depth: u32,
    /// Source tag (`@name:`), if the source loop was tagged.
    pub tag: Option<String>,
}

impl Loop {
    /// True if `b` belongs to this loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }

    /// Blocks outside the loop that exit edges lead to, deduplicated.
    pub fn exit_targets(&self) -> Vec<BlockId> {
        let mut v: Vec<BlockId> = self.exit_edges.iter().map(|&(_, t)| t).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// All natural loops of one function, with nesting structure.
#[derive(Debug, Clone)]
pub struct LoopForest {
    loops: Vec<Loop>,
    /// Innermost loop containing each block.
    innermost: Vec<Option<LoopId>>,
}

impl LoopForest {
    /// Detects the loops of `f`.
    pub fn new(f: &Function, cfg: &Cfg, dom: &DomTree) -> Self {
        // Group back edges by header.
        let mut back_edges: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for b in f.block_ids() {
            if cfg.rpo_index(b).is_none() {
                continue;
            }
            for &s in cfg.succs(b) {
                if dom.dominates(s, b) {
                    back_edges.entry(s).or_default().push(b);
                }
            }
        }
        let mut headers: Vec<BlockId> = back_edges.keys().copied().collect();
        headers.sort_unstable();
        let mut loops = Vec::new();
        for header in headers {
            let latches = back_edges.remove(&header).expect("header has latches");
            let mut blocks: BTreeSet<BlockId> = BTreeSet::new();
            blocks.insert(header);
            let mut stack: Vec<BlockId> = Vec::new();
            for &latch in &latches {
                if blocks.insert(latch) {
                    stack.push(latch);
                }
            }
            while let Some(b) = stack.pop() {
                for &p in cfg.preds(b) {
                    if cfg.rpo_index(p).is_some() && blocks.insert(p) {
                        stack.push(p);
                    }
                }
            }
            let mut exit_edges = Vec::new();
            for &b in &blocks {
                for &s in cfg.succs(b) {
                    if !blocks.contains(&s) {
                        exit_edges.push((b, s));
                    }
                }
            }
            let id = LoopId(loops.len() as u32);
            loops.push(Loop {
                id,
                header,
                blocks,
                latches,
                exit_edges,
                parent: None,
                children: Vec::new(),
                depth: 0,
                tag: f.loop_tags.get(&header).cloned(),
            });
        }
        // Nesting: parent = smallest strictly containing loop. Natural loops
        // either nest or are disjoint (given reducible control flow, which
        // our lowering guarantees).
        let n = loops.len();
        for i in 0..n {
            let mut best: Option<usize> = None;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let contains = loops[j].blocks.len() > loops[i].blocks.len()
                    && loops[i].blocks.iter().all(|b| loops[j].blocks.contains(b));
                if contains {
                    best = match best {
                        None => Some(j),
                        Some(k) if loops[j].blocks.len() < loops[k].blocks.len() => Some(j),
                        keep => keep,
                    };
                }
            }
            if let Some(j) = best {
                loops[i].parent = Some(LoopId(j as u32));
            }
        }
        for i in 0..n {
            if let Some(p) = loops[i].parent {
                let id = loops[i].id;
                loops[p.index()].children.push(id);
            }
        }
        // Depths by walking parents.
        for i in 0..n {
            let mut d = 0;
            let mut cur = loops[i].parent;
            while let Some(p) = cur {
                d += 1;
                cur = loops[p.index()].parent;
            }
            loops[i].depth = d;
        }
        // Innermost loop per block: the containing loop with max depth.
        let mut innermost: Vec<Option<LoopId>> = vec![None; f.blocks.len()];
        for l in &loops {
            for &b in &l.blocks {
                innermost[b.index()] = match innermost[b.index()] {
                    None => Some(l.id),
                    Some(prev) if loops[prev.index()].depth < l.depth => Some(l.id),
                    keep => keep,
                };
            }
        }
        LoopForest { loops, innermost }
    }

    /// All loops, in header order.
    pub fn iter(&self) -> impl Iterator<Item = &Loop> {
        self.loops.iter()
    }

    /// Number of loops.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// True if the function has no loops.
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// Access a loop by id.
    pub fn get(&self, id: LoopId) -> &Loop {
        &self.loops[id.index()]
    }

    /// The innermost loop containing block `b`, if any.
    pub fn innermost(&self, b: BlockId) -> Option<LoopId> {
        self.innermost[b.index()]
    }

    /// Top-level loops (no parent), outermost first.
    pub fn top_level(&self) -> impl Iterator<Item = &Loop> {
        self.loops.iter().filter(|l| l.parent.is_none())
    }

    /// The loop whose header carries source tag `tag`.
    pub fn by_tag(&self, tag: &str) -> Option<&Loop> {
        self.loops.iter().find(|l| l.tag.as_deref() == Some(tag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    fn forest(src: &str) -> (Function, LoopForest) {
        let m = compile(src).expect("compile");
        let f = m.funcs[0].clone();
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&f, &cfg);
        let lf = LoopForest::new(&f, &cfg, &dom);
        (f, lf)
    }

    #[test]
    fn straight_line_code_has_no_loops() {
        let (_, lf) = forest("fn main() -> int { return 1; }");
        assert!(lf.is_empty());
    }

    #[test]
    fn single_while_loop_detected() {
        let (_, lf) = forest("fn main() { let i: int = 0; while (i < 4) { i = i + 1; } }");
        assert_eq!(lf.len(), 1);
        let l = lf.iter().next().expect("one loop");
        assert_eq!(l.latches.len(), 1);
        assert!(!l.exit_edges.is_empty());
        assert_eq!(l.depth, 0);
    }

    #[test]
    fn nested_loops_form_a_forest() {
        let (_, lf) = forest(
            "fn main() { let s: int = 0; \
             @outer: for (let i: int = 0; i < 3; i = i + 1) { \
               @inner: for (let j: int = 0; j < 3; j = j + 1) { s = s + i * j; } } }",
        );
        assert_eq!(lf.len(), 2);
        let outer = lf.by_tag("outer").expect("outer tagged");
        let inner = lf.by_tag("inner").expect("inner tagged");
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.children, vec![inner.id]);
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert!(inner.blocks.iter().all(|b| outer.blocks.contains(b)));
    }

    #[test]
    fn sibling_loops_are_disjoint() {
        let (_, lf) = forest(
            "fn main() { let i: int = 0; \
             @a: while (i < 3) { i = i + 1; } \
             @b: while (i < 6) { i = i + 1; } }",
        );
        assert_eq!(lf.len(), 2);
        let a = lf.by_tag("a").expect("a");
        let b = lf.by_tag("b").expect("b");
        assert!(a.parent.is_none() && b.parent.is_none());
        assert!(a.blocks.is_disjoint(&b.blocks));
    }

    #[test]
    fn break_adds_extra_exit_edge() {
        let (_, lf) = forest(
            "fn main() { let i: int = 0; while (true) { i = i + 1; \
             if (i > 5) { break; } } }",
        );
        assert_eq!(lf.len(), 1);
        let l = lf.iter().next().expect("loop");
        // The header's (never-taken) false edge plus the edge into the
        // break path (whose block cannot reach the latch, so it is outside
        // the natural loop).
        assert_eq!(l.exit_edges.len(), 2);
    }

    #[test]
    fn innermost_lookup() {
        let (_, lf) = forest(
            "fn main() { \
             @outer: for (let i: int = 0; i < 3; i = i + 1) { \
               @inner: for (let j: int = 0; j < 3; j = j + 1) { } } }",
        );
        let outer = lf.by_tag("outer").expect("outer");
        let inner = lf.by_tag("inner").expect("inner");
        assert_eq!(lf.innermost(inner.header), Some(inner.id));
        assert_eq!(lf.innermost(outer.header), Some(outer.id));
    }

    #[test]
    fn while_with_logical_condition_keeps_single_loop() {
        let (_, lf) = forest(
            "fn main() { let i: int = 0; let ok: bool = true; \
             while (ok && i < 10) { i = i + 2; } }",
        );
        assert_eq!(lf.len(), 1);
        // Condition evaluation blocks belong to the loop.
        let l = lf.iter().next().expect("loop");
        assert!(l.blocks.len() >= 4);
    }

    #[test]
    fn triple_nesting_depths() {
        let (_, lf) = forest(
            "fn main() { let s: int = 0; \
             for (let i: int = 0; i < 2; i = i + 1) { \
               for (let j: int = 0; j < 2; j = j + 1) { \
                 for (let k: int = 0; k < 2; k = k + 1) { s = s + 1; } } } }",
        );
        assert_eq!(lf.len(), 3);
        let mut depths: Vec<u32> = lf.iter().map(|l| l.depth).collect();
        depths.sort_unstable();
        assert_eq!(depths, vec![0, 1, 2]);
    }
}
