//! Benches for the parallel verification engine: permutation replays of
//! one loop fanned out across workers, and independent loops of a module
//! verified concurrently. Thread counts 1/2/4 run the *same* work — the
//! engine guarantees verdict-identical reports — so the timings compare
//! directly; on a multi-core host the wider runs approach linear speedup.

use dca_bench::harness::Harness;
use dca_core::{Dca, DcaConfig, PermutationSet};
use std::hint::black_box;

/// A module with `loops` independent map loops — the loop-level fan-out
/// case.
fn multi_loop_module(loops: usize, trip: usize) -> dca_ir::Module {
    let mut src = String::from("fn main() -> int { let s: int = 0;\n");
    for k in 0..loops {
        src.push_str(&format!("let a{k}: [int; {trip}];\n"));
        src.push_str(&format!(
            "@l{k}: for (let i: int = 0; i < {trip}; i = i + 1) {{ a{k}[i] = i * {m}; }}\n",
            m = k + 2
        ));
        src.push_str(&format!(
            "for (let i: int = 0; i < {trip}; i = i + 1) {{ s = s + a{k}[i]; }}\n"
        ));
    }
    src.push_str("return s; }");
    dca_ir::compile(&src).expect("generated module compiles")
}

/// A module whose single hot loop gets many permutation replays — the
/// replay-level fan-out case.
fn hot_loop_module(trip: usize) -> dca_ir::Module {
    let src = format!(
        "fn main() -> int {{ let a: [int; {trip}]; let s: int = 0; \
         @hot: for (let i: int = 0; i < {trip}; i = i + 1) {{ a[i] = i * i % 97; }} \
         for (let i: int = 0; i < {trip}; i = i + 1) {{ s = s + a[i]; }} \
         return s; }}"
    );
    dca_ir::compile(&src).expect("generated module compiles")
}

fn bench_loop_fanout(h: &mut Harness) {
    let m = multi_loop_module(8, 48);
    for threads in [1usize, 2, 4] {
        h.bench_function(&format!("parallel/loops_x8/threads_{threads}"), |b| {
            let dca = Dca::new(DcaConfig {
                threads,
                ..DcaConfig::fast()
            });
            b.iter(|| black_box(dca.analyze_module(&m).expect("analyze")))
        });
    }
}

fn bench_replay_fanout(h: &mut Harness) {
    let m = hot_loop_module(64);
    for threads in [1usize, 2, 4] {
        h.bench_function(&format!("parallel/shuffles_x16/threads_{threads}"), |b| {
            let dca = Dca::new(DcaConfig {
                threads,
                permutations: PermutationSet::Presets { shuffles: 16 },
                ..DcaConfig::fast()
            });
            b.iter(|| black_box(dca.analyze_module(&m).expect("analyze")))
        });
    }
}

fn main() {
    let mut h = Harness::new().sample_size(10);
    bench_loop_fanout(&mut h);
    bench_replay_fanout(&mut h);
    // Headline number: measured sequential-vs-parallel speedup of one
    // analysis, with verdict identity asserted inside.
    let m = multi_loop_module(8, 48);
    let threads = dca_core::effective_threads(0);
    let (seq, par, ratio) = dca_bench::engine_speedup(&m, &[], &DcaConfig::fast(), threads);
    println!(
        "engine speedup on {threads} threads: {:?} sequential vs {:?} parallel = {ratio:.2}x",
        seq, par
    );
    h.finish();
}
