//! Measures what the persistent verdict cache buys on re-analysis, and
//! gates the incremental-reanalysis claim (DESIGN.md §15): a fully warm
//! run over the 8-loop suite — every verdict served from the cache file,
//! no recording, no permuted replays — must be at least 10x faster than
//! the cold run that populates it.
//!
//! Three variants over the same module:
//!
//! * `cache/none` — no cache configured: the baseline every prior bench
//!   measured, and the overhead reference for `cache/cold`.
//! * `cache/cold` — a fresh cache file per iteration: full analysis plus
//!   key derivation and write-back (the worst case a cache user pays).
//! * `cache/warm` — a pre-populated file: key derivation, one file
//!   parse, and per-loop hits.
//!
//! The process exits non-zero when a gate fails, so `cargo bench --bench
//! cache_scaling` doubles as a CI gate like `digest_scaling`.

use dca_bench::harness::Harness;
use dca_core::{Dca, DcaConfig};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Duration;

/// The 8-loop suite from `parallel_engine`: independent tagged map loops
/// plus untagged reduction loops, so a run exercises several verdict
/// classes and a non-trivial store count.
fn multi_loop_module(loops: usize, trip: usize) -> dca_ir::Module {
    let mut src = String::from("fn main() -> int { let s: int = 0;\n");
    for k in 0..loops {
        src.push_str(&format!("let a{k}: [int; {trip}];\n"));
        src.push_str(&format!(
            "@l{k}: for (let i: int = 0; i < {trip}; i = i + 1) {{ a{k}[i] = i * {m}; }}\n",
            m = k + 2
        ));
        src.push_str(&format!(
            "for (let i: int = 0; i < {trip}; i = i + 1) {{ s = s + a{k}[i]; }}\n"
        ));
    }
    src.push_str("return s; }");
    dca_ir::compile(&src).expect("generated module compiles")
}

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dca-bench-cache-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir scratch");
    dir
}

fn with_cache(path: Option<PathBuf>) -> DcaConfig {
    DcaConfig {
        cache: path,
        threads: 1,
        ..DcaConfig::fast()
    }
}

fn min_of(h: &Harness, name: &str) -> Duration {
    h.results()
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("bench {name} did not run"))
        .min
}

fn main() {
    let dir = scratch_dir();
    let m = multi_loop_module(8, 48);
    let mut h = Harness::new().sample_size(10);

    h.bench_function("cache/none", |b| {
        let dca = Dca::new(with_cache(None));
        b.iter(|| black_box(dca.analyze_module(&m).expect("analyze")))
    });

    h.bench_function("cache/cold", |b| {
        let path = dir.join("cold.json");
        let dca = Dca::new(with_cache(Some(path.clone())));
        b.iter(|| {
            // Each sample pays the full cold path: analysis, key
            // derivation, and the write-back of every verdict.
            std::fs::remove_file(&path).ok();
            let r = dca.analyze_module(&m).expect("analyze");
            assert_eq!(r.cached_count(), 0, "cold run must not hit");
            black_box(r)
        })
    });

    h.bench_function("cache/warm", |b| {
        let path = dir.join("warm.json");
        std::fs::remove_file(&path).ok();
        let dca = Dca::new(with_cache(Some(path)));
        let cold = dca.analyze_module(&m).expect("populate cache");
        b.iter(|| {
            let r = dca.analyze_module(&m).expect("analyze");
            assert_eq!(
                r.cached_count(),
                cold.len(),
                "warm run must serve every loop from the cache"
            );
            black_box(r)
        })
    });

    h.finish();

    // Gate 1: warm re-analysis is at least 10x faster than the cold run
    // it replaces. Minima, not medians — the fastest sample is the
    // least-noise estimator for CPU-bound loops, and medians would make
    // the gate flaky under CI machine load.
    let cold = min_of(&h, "cache/cold");
    let warm = min_of(&h, "cache/warm");
    assert!(
        warm.as_secs_f64() * 10.0 <= cold.as_secs_f64(),
        "warm analysis ({warm:?}) is not >=10x faster than cold ({cold:?})"
    );

    // Gate 2: carrying a cache costs little — the cold run (analysis +
    // keying + write-back) stays within 2x of the cacheless baseline.
    let none = min_of(&h, "cache/none");
    assert!(
        cold.as_secs_f64() <= none.as_secs_f64() * 2.0,
        "cold cached analysis ({cold:?}) more than doubles the cacheless \
         baseline ({none:?})"
    );

    std::fs::remove_dir_all(&dir).ok();
    println!(
        "cache scaling gates passed: cold {cold:?} vs warm {warm:?} \
         ({:.1}x), overhead vs no-cache {:+.1}%",
        cold.as_secs_f64() / warm.as_secs_f64(),
        (cold.as_secs_f64() / none.as_secs_f64() - 1.0) * 100.0
    );
}
