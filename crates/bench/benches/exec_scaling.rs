//! Measures the real-thread loop executor ([`dca_parallel::execute_loop`])
//! across worker counts, on the two shapes that matter: a doall map
//! (journal-merged heap writes) and a scalar reduction (chunk-ordered
//! partial combining). Every measured run validates against the
//! sequential oracle; a divergence panics the bench, so `cargo bench
//! --bench exec_scaling` doubles as a correctness gate for the executor
//! under release-mode timing pressure.
//!
//! No wall-clock speedup is asserted — CI runners have few cores and the
//! interpreter's per-worker pre-pass is a known sequential fraction — but
//! the per-width medians land in the JSON report and regress against
//! `bench/baseline.json` like every other bench.

use dca_bench::harness::Harness;
use dca_core::Obs;
use dca_parallel::{execute_loop, ExecConfig, Schedule};

const WIDTHS: &[usize] = &[1, 2, 4];

fn fixture(kind: &str) -> (dca_ir::Module, dca_ir::LoopRef) {
    let src = match kind {
        "map" => {
            "fn main() -> int { let a: [int; 2048]; let s: int = 0; \
             @hot: for (let i: int = 0; i < 2048; i = i + 1) { \
               a[i] = (i * i + 7 * i) % 1021; } \
             for (let i: int = 0; i < 2048; i = i + 1) { s = s + a[i]; } \
             return s; }"
        }
        "reduce" => {
            "fn main() -> int { let s: int = 0; \
             @hot: for (let i: int = 0; i < 2048; i = i + 1) { \
               s = s + (i * i + 3) % 257; } \
             return s; }"
        }
        other => panic!("unknown fixture {other}"),
    };
    let m = dca_ir::compile(src).expect("fixture compiles");
    let lref = dca_ir::all_loops(&m)
        .into_iter()
        .find(|(_, t)| t.as_deref() == Some("hot"))
        .expect("tagged loop")
        .0;
    (m, lref)
}

fn main() {
    let mut h = Harness::new().sample_size(10);
    let obs = Obs::disabled();

    for kind in ["map", "reduce"] {
        let (m, lref) = fixture(kind);
        for &w in WIDTHS {
            let cfg = ExecConfig {
                threads: w,
                ..ExecConfig::default()
            };
            h.bench_function(&format!("exec/{kind}/static/w{w}"), |b| {
                b.iter(|| {
                    let out = execute_loop(&m, &[], lref, &cfg, &obs).expect("execute");
                    assert!(out.validated && out.exact, "{kind} w{w} must validate");
                    out.fingerprint
                })
            });
        }
        let cfg = ExecConfig {
            threads: 4,
            schedule: Schedule::Dynamic { chunk: 64 },
            ..ExecConfig::default()
        };
        h.bench_function(&format!("exec/{kind}/dynamic/w4"), |b| {
            b.iter(|| {
                let out = execute_loop(&m, &[], lref, &cfg, &obs).expect("execute");
                assert!(out.validated && out.exact, "{kind} dynamic must validate");
                out.fingerprint
            })
        });
    }

    h.finish();
    println!("exec scaling: all widths validated against the sequential oracle");
}
