//! Measures the real-thread loop executor ([`dca_parallel::execute_loop`])
//! across worker counts, on the two shapes that matter: a doall map
//! (journal-merged heap writes) and a scalar reduction (chunk-ordered
//! partial combining). Every measured run validates against the
//! sequential oracle; a divergence panics the bench, so `cargo bench
//! --bench exec_scaling` doubles as a correctness gate for the executor
//! under release-mode timing pressure.
//!
//! No wall-clock speedup is asserted — CI runners have few cores and the
//! interpreter's per-worker pre-pass is a known sequential fraction — but
//! the per-width medians land in the JSON report and regress against
//! `bench/baseline.json` like every other bench. One self-gate *is*
//! asserted: [`Schedule::Auto`]'s profile-tuned chunk must land within
//! 10% of the best fixed schedule at the same width, so the autotuner can
//! never silently pick a pathological chunk.

use dca_bench::harness::Harness;
use dca_core::Obs;
use dca_parallel::{execute_loop, ExecConfig, Schedule, DEFAULT_DYNAMIC_CHUNK};

const WIDTHS: &[usize] = &[1, 2, 4];

fn fixture(kind: &str) -> (dca_ir::Module, dca_ir::LoopRef) {
    let src = match kind {
        "map" => {
            "fn main() -> int { let a: [int; 2048]; let s: int = 0; \
             @hot: for (let i: int = 0; i < 2048; i = i + 1) { \
               a[i] = (i * i + 7 * i) % 1021; } \
             for (let i: int = 0; i < 2048; i = i + 1) { s = s + a[i]; } \
             return s; }"
        }
        "reduce" => {
            "fn main() -> int { let s: int = 0; \
             @hot: for (let i: int = 0; i < 2048; i = i + 1) { \
               s = s + (i * i + 3) % 257; } \
             return s; }"
        }
        other => panic!("unknown fixture {other}"),
    };
    let m = dca_ir::compile(src).expect("fixture compiles");
    let lref = dca_ir::all_loops(&m)
        .into_iter()
        .find(|(_, t)| t.as_deref() == Some("hot"))
        .expect("tagged loop")
        .0;
    (m, lref)
}

/// Fastest sample — what the self-gate compares; minima approximate the
/// uncontended speed and wobble far less than medians under scheduler
/// noise.
fn min_of(h: &Harness, name: &str) -> std::time::Duration {
    h.results()
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("bench {name} did not run"))
        .min
}

fn main() {
    let mut h = Harness::new().sample_size(10);
    let obs = Obs::disabled();

    for kind in ["map", "reduce"] {
        let (m, lref) = fixture(kind);
        for &w in WIDTHS {
            let cfg = ExecConfig {
                threads: w,
                ..ExecConfig::default()
            };
            h.bench_function(&format!("exec/{kind}/static/w{w}"), |b| {
                b.iter(|| {
                    let out = execute_loop(&m, &[], lref, &cfg, &obs).expect("execute");
                    assert!(out.validated && out.exact, "{kind} w{w} must validate");
                    out.fingerprint
                })
            });
        }
        for (label, schedule) in [
            (
                "dynamic",
                Schedule::Dynamic {
                    chunk: DEFAULT_DYNAMIC_CHUNK,
                },
            ),
            ("auto", Schedule::Auto),
        ] {
            let cfg = ExecConfig {
                threads: 4,
                schedule,
                ..ExecConfig::default()
            };
            h.bench_function(&format!("exec/{kind}/{label}/w4"), |b| {
                b.iter(|| {
                    let out = execute_loop(&m, &[], lref, &cfg, &obs).expect("execute");
                    assert!(out.validated && out.exact, "{kind} {label} must validate");
                    if schedule == Schedule::Auto {
                        assert!(out.chunk.is_some(), "auto run must report its chunk");
                    }
                    out.fingerprint
                })
            });
        }
    }

    h.finish();

    // The autotuned schedule must not lose more than 10% to the best
    // fixed schedule at the same width — it pays for the footprint
    // profile during recording, so a tie within the margin is the
    // expected outcome, and a big gap means the tuner picked badly.
    for kind in ["map", "reduce"] {
        let best_fixed = min_of(&h, &format!("exec/{kind}/static/w4"))
            .min(min_of(&h, &format!("exec/{kind}/dynamic/w4")));
        let auto = min_of(&h, &format!("exec/{kind}/auto/w4"));
        assert!(
            auto.as_secs_f64() <= best_fixed.as_secs_f64() * 1.10,
            "{kind}: autotuned schedule ({auto:?}) more than 10% behind the best \
             fixed schedule ({best_fixed:?})"
        );
    }

    println!("exec scaling: all widths validated; autotuned chunk within 10% of best fixed");
}
