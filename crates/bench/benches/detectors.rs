//! Criterion benches comparing the end-to-end cost of every detection
//! technique on one NPB-like program (EP) and one PLDS program (BFS).

use criterion::{criterion_group, criterion_main, Criterion};
use dca_baselines::all_detectors;
use std::hint::black_box;

fn bench_detectors(c: &mut Criterion) {
    for name in ["ep", "bfs"] {
        let p = dca_suite::by_name(name).expect("suite program");
        let m = p.module();
        let args = p.targs();
        for det in all_detectors(dca_core::DcaConfig::fast()) {
            c.bench_function(&format!("detect/{name}/{}", det.technique()), |b| {
                b.iter(|| black_box(det.detect(&m, &args)))
            });
        }
    }
}

fn bench_trace(c: &mut Criterion) {
    let p = dca_suite::by_name("cg").expect("cg exists");
    let m = p.module();
    let args = p.targs();
    c.bench_function("detect/cg/memory_trace", |b| {
        b.iter(|| black_box(dca_baselines::trace_dependences(&m, &args, u64::MAX)))
    });
    c.bench_function("detect/cg/plain_execution", |b| {
        b.iter(|| black_box(dca_interp::run_program(&m, &args).expect("run")))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_detectors, bench_trace
);
criterion_main!(benches);
