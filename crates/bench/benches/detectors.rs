//! Benches comparing the end-to-end cost of every detection technique on
//! one NPB-like program (EP) and one PLDS program (BFS).

use dca_baselines::all_detectors;
use dca_bench::harness::Harness;
use std::hint::black_box;

fn bench_detectors(h: &mut Harness) {
    for name in ["ep", "bfs"] {
        let p = dca_suite::by_name(name).expect("suite program");
        let m = p.module();
        let args = p.targs();
        for det in all_detectors(dca_core::DcaConfig::fast()) {
            h.bench_function(&format!("detect/{name}/{}", det.technique()), |b| {
                b.iter(|| black_box(det.detect(&m, &args)))
            });
        }
    }
}

fn bench_trace(h: &mut Harness) {
    let p = dca_suite::by_name("cg").expect("cg exists");
    let m = p.module();
    let args = p.targs();
    h.bench_function("detect/cg/memory_trace", |b| {
        b.iter(|| black_box(dca_baselines::trace_dependences(&m, &args, u64::MAX)))
    });
    h.bench_function("detect/cg/plain_execution", |b| {
        b.iter(|| black_box(dca_interp::run_program(&m, &args).expect("run")))
    });
}

fn main() {
    let mut h = Harness::new().sample_size(15);
    bench_detectors(&mut h);
    bench_trace(&mut h);
    h.finish();
}
