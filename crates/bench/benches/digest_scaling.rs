//! Measures how loop-exit live-out verification scales with reachable
//! heap size, and gates the streaming-verification claims (DESIGN.md
//! §14): the hashed tier — [`dca_core::hash_live_state`] streaming the
//! canonical traversal into a 128-bit fingerprint — must beat the
//! materialized-digest path by at least 5x at 128 Ki-cell heaps, and must
//! be allocation-free in steady state (per-worker scratch reused across
//! replays, nothing else).
//!
//! Three variants are swept over heap size × live-out root count:
//!
//! * `digest/fresh`  — [`dca_core::StateDigest::capture`] plus a
//!   structural `matches`, allocating the digest anew per verify: the
//!   per-replay cost every permuted replay paid before the hashed tier.
//! * `digest/scratch` — `capture_with` reusing per-worker traversal
//!   scratch plus `matches`: today's tier-2 (tolerance > 0) path.
//! * `hash`          — `hash_live_state` with the same scratch, compared
//!   against a 16-byte reference: today's tier-1 path.
//!
//! The process exits non-zero when a gate fails, so `cargo bench --bench
//! digest_scaling` doubles as a CI gate like `restore_scaling`.

use dca_bench::harness::Harness;
use dca_core::{hash_live_state, DigestScratch, StateDigest};
use dca_interp::{Machine, NoHooks, Value};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Counts every allocator call so the steady-state gate can prove the
/// hashed tier performs none. Deallocation is uncounted: the gate is
/// about acquiring memory in the hot path.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Heap sizes swept (cells in the global array). The largest point is
/// the ISSUE's 128 Ki-cell headline.
const HEAPS: &[usize] = &[1 << 10, 1 << 14, 1 << 17];

/// Live-out root counts swept (scalar roots handed to the traversal).
const ROOTS: &[usize] = &[1, 16];

fn fixture(heap: usize) -> dca_ir::Module {
    // The loop seeds the global with varied values so the digest walk
    // reads real data, including a float whose bits exercise the
    // canonicalization path.
    dca_ir::compile(&format!(
        "let g: [int; {heap}];\n\
         let f: [float; 8];\n\
         fn main() -> int {{\n\
           for (let i: int = 0; i < {heap}; i = i + 1) {{ g[i] = i * 7 + 3; }}\n\
           for (let i: int = 0; i < 8; i = i + 1) {{\n\
             f[i] = (i as float) / 3.0;\n\
           }}\n\
           return g[1];\n\
         }}"
    ))
    .expect("fixture compiles")
}

fn min_of(h: &Harness, name: &str) -> Duration {
    h.results()
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("bench {name} did not run"))
        .min
}

fn main() {
    let mut h = Harness::new().sample_size(10);

    for &roots_n in ROOTS {
        for &heap in HEAPS {
            let m = fixture(heap);
            let main_fn = m.main().expect("main");
            let mut machine = Machine::new(&m);
            machine.push_call(main_fn, &[]).expect("push");
            machine.run(&mut NoHooks, u64::MAX).expect("seed globals");
            let machine = machine; // digesting needs it immutable only
            let roots: Vec<Value> = (0..roots_n as i64).map(Value::Int).collect();

            // References captured once, as the engine does per loop.
            let reference = StateDigest::capture(&machine, &roots);
            let mut scratch = DigestScratch::new();
            let (ref_hash, _) = hash_live_state(&machine, &roots, &mut scratch);

            h.bench_function(&format!("digest/fresh/h{heap}_r{roots_n}"), |b| {
                b.iter(|| {
                    let d = StateDigest::capture(&machine, &roots);
                    assert!(reference.matches(&d, 0.0));
                })
            });

            h.bench_function(&format!("digest/scratch/h{heap}_r{roots_n}"), |b| {
                b.iter(|| {
                    let d = StateDigest::capture_with(&machine, &roots, &mut scratch);
                    assert!(reference.matches(&d, 0.0));
                })
            });

            h.bench_function(&format!("hash/h{heap}_r{roots_n}"), |b| {
                b.iter(|| {
                    let (got, _) = hash_live_state(&machine, &roots, &mut scratch);
                    assert!(got == ref_hash);
                })
            });
        }
    }

    h.finish();

    // Gate 1: at the 128 Ki-cell point the hashed tier beats per-replay
    // digest materialization by at least 5x, for every root count.
    // Compared on per-variant minima: for CPU-bound loops the fastest
    // sample is the least-noise estimator, while medians swing with
    // machine load and would make the gate flaky in CI.
    let h_max = *HEAPS.last().expect("non-empty sweep");
    for &roots_n in ROOTS {
        let fresh = min_of(&h, &format!("digest/fresh/h{h_max}_r{roots_n}"));
        let hashed = min_of(&h, &format!("hash/h{h_max}_r{roots_n}"));
        assert!(
            hashed.as_secs_f64() * 5.0 <= fresh.as_secs_f64(),
            "hashed verify ({hashed:?}) is not >=5x faster than materialized \
             digest verify ({fresh:?}) at {h_max} heap cells, r={roots_n}"
        );
    }

    // Gate 2: steady-state hashed verification is allocation-free. The
    // scratch is warm from the sweep above; from here on the hot path
    // must never touch the allocator.
    {
        let m = fixture(h_max);
        let main_fn = m.main().expect("main");
        let mut machine = Machine::new(&m);
        machine.push_call(main_fn, &[]).expect("push");
        machine.run(&mut NoHooks, u64::MAX).expect("seed globals");
        let roots: Vec<Value> = (0..4).map(Value::Int).collect();
        let mut scratch = DigestScratch::new();
        let (warm, _) = hash_live_state(&machine, &roots, &mut scratch); // warm the scratch
        let before = ALLOC_CALLS.load(Ordering::Relaxed);
        for _ in 0..64 {
            let (got, _) = hash_live_state(&machine, &roots, &mut scratch);
            assert!(got == warm);
        }
        let allocs = ALLOC_CALLS.load(Ordering::Relaxed) - before;
        assert!(
            allocs == 0,
            "steady-state hashed verification allocated {allocs} time(s) \
             across 64 captures"
        );
    }

    let fresh = min_of(&h, &format!("digest/fresh/h{h_max}_r{}", ROOTS[0]));
    let hashed = min_of(&h, &format!("hash/h{h_max}_r{}", ROOTS[0]));
    println!(
        "digest scaling gates passed: at {h_max} cells, materialized {fresh:?} \
         vs hashed {hashed:?} ({:.1}x), steady state allocation-free",
        fresh.as_secs_f64() / hashed.as_secs_f64()
    );
}
