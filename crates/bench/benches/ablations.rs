//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. permutation presets — reverse-only vs k random shuffles vs
//!    exhaustive enumeration (paper §IV-B2's safety/cost trade-off);
//! 2. verification scope — whole-program outcome vs loop-exit digest
//!    (§III vs the cheaper, stricter variant);
//! 3. number of tested invocations (§IV-E context sensitivity).

use dca_bench::harness::Harness;
use dca_core::{Dca, DcaConfig, PermutationSet, VerifyScope};
use std::hint::black_box;

fn fixture() -> (dca_ir::Module, Vec<dca_interp::Value>) {
    let p = dca_suite::by_name("cg").expect("cg exists");
    (p.module(), p.targs())
}

fn bench_permutation_presets(h: &mut Harness) {
    let (m, args) = fixture();
    let presets: &[(&str, PermutationSet)] = &[
        ("reverse_only", PermutationSet::ReverseOnly),
        ("shuffles_1", PermutationSet::Presets { shuffles: 1 }),
        ("shuffles_3", PermutationSet::Presets { shuffles: 3 }),
        ("shuffles_8", PermutationSet::Presets { shuffles: 8 }),
        (
            "exhaustive_5",
            PermutationSet::Exhaustive {
                max_trip: 5,
                fallback_shuffles: 3,
            },
        ),
    ];
    for (name, preset) in presets {
        h.bench_function(&format!("ablation/permutations/{name}"), |b| {
            let dca = Dca::new(DcaConfig {
                permutations: preset.clone(),
                ..DcaConfig::fast()
            });
            b.iter(|| black_box(dca.analyze(&m, &args).expect("analyze")))
        });
    }
}

fn bench_verify_scope(h: &mut Harness) {
    let (m, args) = fixture();
    for (name, scope) in [
        ("program_end", VerifyScope::ProgramEnd),
        ("loop_exit", VerifyScope::LoopExit),
    ] {
        h.bench_function(&format!("ablation/verify_scope/{name}"), |b| {
            let dca = Dca::new(DcaConfig {
                verify_scope: scope,
                ..DcaConfig::fast()
            });
            b.iter(|| black_box(dca.analyze(&m, &args).expect("analyze")))
        });
    }
}

fn bench_invocations(h: &mut Harness) {
    let (m, args) = fixture();
    for k in [1u32, 2, 3] {
        h.bench_function(&format!("ablation/invocations/{k}"), |b| {
            let dca = Dca::new(DcaConfig {
                invocations: k,
                ..DcaConfig::fast()
            });
            b.iter(|| black_box(dca.analyze(&m, &args).expect("analyze")))
        });
    }
}

fn main() {
    let mut h = Harness::new().sample_size(10);
    bench_permutation_presets(&mut h);
    bench_verify_scope(&mut h);
    bench_invocations(&mut h);
    h.finish();
}
