//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. permutation presets — reverse-only vs k random shuffles vs
//!    exhaustive enumeration (paper §IV-B2's safety/cost trade-off);
//! 2. verification scope — whole-program outcome vs loop-exit digest
//!    (§III vs the cheaper, stricter variant);
//! 3. number of tested invocations (§IV-E context sensitivity).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dca_core::{Dca, DcaConfig, PermutationSet, VerifyScope};
use std::hint::black_box;

fn fixture() -> (dca_ir::Module, Vec<dca_interp::Value>) {
    let p = dca_suite::by_name("cg").expect("cg exists");
    (p.module(), p.targs())
}

fn bench_permutation_presets(c: &mut Criterion) {
    let (m, args) = fixture();
    let mut g = c.benchmark_group("ablation/permutations");
    let presets: &[(&str, PermutationSet)] = &[
        ("reverse_only", PermutationSet::ReverseOnly),
        ("shuffles_1", PermutationSet::Presets { shuffles: 1 }),
        ("shuffles_3", PermutationSet::Presets { shuffles: 3 }),
        ("shuffles_8", PermutationSet::Presets { shuffles: 8 }),
        (
            "exhaustive_5",
            PermutationSet::Exhaustive {
                max_trip: 5,
                fallback_shuffles: 3,
            },
        ),
    ];
    for (name, preset) in presets {
        g.bench_with_input(BenchmarkId::from_parameter(name), preset, |b, preset| {
            let dca = Dca::new(DcaConfig {
                permutations: preset.clone(),
                ..DcaConfig::fast()
            });
            b.iter(|| black_box(dca.analyze(&m, &args).expect("analyze")))
        });
    }
    g.finish();
}

fn bench_verify_scope(c: &mut Criterion) {
    let (m, args) = fixture();
    let mut g = c.benchmark_group("ablation/verify_scope");
    for (name, scope) in [
        ("program_end", VerifyScope::ProgramEnd),
        ("loop_exit", VerifyScope::LoopExit),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &scope, |b, &scope| {
            let dca = Dca::new(DcaConfig {
                verify_scope: scope,
                ..DcaConfig::fast()
            });
            b.iter(|| black_box(dca.analyze(&m, &args).expect("analyze")))
        });
    }
    g.finish();
}

fn bench_invocations(c: &mut Criterion) {
    let (m, args) = fixture();
    let mut g = c.benchmark_group("ablation/invocations");
    for k in [1u32, 2, 3] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let dca = Dca::new(DcaConfig {
                invocations: k,
                ..DcaConfig::fast()
            });
            b.iter(|| black_box(dca.analyze(&m, &args).expect("analyze")))
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_permutation_presets, bench_verify_scope, bench_invocations
);
criterion_main!(benches);
