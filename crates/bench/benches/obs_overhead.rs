//! Asserts that observability and the robustness layer are free when
//! disabled.
//!
//! Measurements: the raw cost of calling the [`dca_core::Obs`]
//! primitives on a disabled handle (must be branch-on-`Option` cheap,
//! with no clock reads); a whole `analyze` run with obs disabled vs
//! metrics enabled; and the same run with the wall-clock governor armed
//! (a generous deadline, so its cooperative checks run but never fire),
//! with a fault plan armed that targets a loop that does not exist
//! (the full targeting machinery runs, nothing is injected), with a
//! cancel token installed that never trips, and against a run paying
//! for real write-ahead journaling (proving the journal-disabled branch
//! is free). The process
//! exits non-zero when any assertion fails, so a
//! `cargo bench --bench obs_overhead` in CI guards the "disabled — or
//! armed-but-idle — adds no measurable overhead" claims.

use dca_bench::harness::Harness;
use dca_core::{CancelToken, Dca, DcaConfig, FaultPlan, Obs, ObsOptions, WallLimits};
use dca_interp::{Machine, NoHooks};
use std::hint::black_box;
use std::time::Duration;

/// Heap writes in the journal fixture's loop; the per-write gate divides
/// by this.
const JOURNAL_WRITES: usize = 4096;

fn fixture() -> dca_ir::Module {
    dca_ir::compile(
        "fn main() -> int { let a: [int; 48]; let s: int = 0; \
         @fill: for (let i: int = 0; i < 48; i = i + 1) { a[i] = i * 3 % 17; } \
         @sum: for (let i: int = 0; i < 48; i = i + 1) { s = s + a[i]; } \
         return s; }",
    )
    .expect("fixture compiles")
}

fn median_of(h: &Harness, name: &str) -> std::time::Duration {
    h.results()
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("bench {name} did not run"))
        .median
}

fn main() {
    let mut h = Harness::new().sample_size(10);

    // 1000 disabled-primitive calls per iteration: a count, a span
    // start/end pair, and a trace event. Each must reduce to an Option
    // branch.
    let disabled = Obs::disabled();
    h.bench_function("obs/disabled_calls_x1000", |b| {
        b.iter(|| {
            for i in 0..1000u64 {
                disabled.count("bench.counter", black_box(i));
                let t = disabled.span_start();
                disabled.span_end("bench.span", t);
            }
        })
    });

    let m = fixture();
    let off = Dca::new(DcaConfig::fast());
    h.bench_function("obs/analyze_disabled", |b| {
        b.iter(|| black_box(off.analyze_module(&m).expect("analyze")))
    });
    let on = Dca::new(DcaConfig {
        obs: ObsOptions::metrics(),
        ..DcaConfig::fast()
    });
    h.bench_function("obs/analyze_metrics", |b| {
        b.iter(|| black_box(on.analyze_module(&m).expect("analyze")))
    });

    // Governor armed with a deadline far beyond the run: every
    // cooperative check executes, none fires.
    let governed = Dca::new(DcaConfig {
        max_wall: WallLimits {
            replay: Some(Duration::from_secs(3600)),
            analysis: Some(Duration::from_secs(3600)),
        },
        ..DcaConfig::fast()
    });
    h.bench_function("robust/analyze_governed", |b| {
        b.iter(|| black_box(governed.analyze_module(&m).expect("analyze")))
    });

    // Fault plan armed at a loop ordinal that does not exist: positional
    // targeting is evaluated for every replay, nothing injects.
    let armed = Dca::new(DcaConfig {
        fault: Some(FaultPlan::parse("panic@replay:0,loop:99").expect("valid spec")),
        ..DcaConfig::fast()
    });
    h.bench_function("robust/analyze_fault_armed_idle", |b| {
        b.iter(|| black_box(armed.analyze_module(&m).expect("analyze")))
    });

    // Cancel token installed but never tripped: every cooperative check
    // in the interpreter granules and at stage boundaries executes (an
    // atomic load), none fires.
    let cancel_armed = Dca::new(DcaConfig {
        cancel: Some(CancelToken::new()),
        ..DcaConfig::fast()
    });
    h.bench_function("robust/analyze_cancel_armed_idle", |b| {
        b.iter(|| black_box(cancel_armed.analyze_module(&m).expect("analyze")))
    });

    // Run journal actually recording (the file is removed each iteration
    // so every run is a cold, fully-written one) — the comparison
    // baseline proving the journal-disabled path adds nothing.
    let jdir = std::env::temp_dir().join(format!("dca-bench-journal-{}", std::process::id()));
    std::fs::create_dir_all(&jdir).expect("mkdir");
    let jpath = jdir.join("bench.journal");
    let journaled = Dca::new(DcaConfig {
        journal: Some(jpath.clone()),
        ..DcaConfig::fast()
    });
    h.bench_function("robust/analyze_journaled_cold", |b| {
        b.iter(|| {
            std::fs::remove_file(&jpath).ok();
            black_box(journaled.analyze_module(&m).expect("analyze"))
        })
    });
    std::fs::remove_dir_all(&jdir).ok();

    // Write journal (DESIGN.md §13): a write-heavy replay with the
    // journal disarmed (the recording path, and any machine outside a
    // permuted replay) vs the same replay armed. The disarmed store hook
    // must reduce to a branch on `Option`.
    let jm = dca_ir::compile(&format!(
        "let g: [int; {JOURNAL_WRITES}];\n\
         fn main() {{\n\
           for (let i: int = 0; i < {JOURNAL_WRITES}; i = i + 1) {{ g[i] = g[i] + i; }}\n\
         }}"
    ))
    .expect("journal fixture compiles");
    let mut machine = Machine::new(&jm);
    machine
        .push_call(jm.main().expect("main"), &[])
        .expect("push");
    let snap = machine.snapshot();
    h.bench_function("journal/replay_disarmed", |b| {
        b.iter(|| {
            machine.run(&mut NoHooks, u64::MAX).expect("replay");
            machine.restore(&snap);
        })
    });
    machine.restore(&snap);
    h.bench_function("journal/replay_armed", |b| {
        b.iter(|| {
            machine.begin_journal();
            machine.run(&mut NoHooks, u64::MAX).expect("replay");
            machine.rollback();
        })
    });

    h.finish();

    // Gate 1: a disabled primitive call must cost nanoseconds, not
    // microseconds. 1000 calls (3 primitives each) under 50 µs leaves a
    // ~15 ns/call budget — an order of magnitude above the real cost,
    // far below anything lock- or clock-bound.
    let calls = median_of(&h, "obs/disabled_calls_x1000");
    assert!(
        calls.as_micros() < 50,
        "disabled obs calls cost {calls:?} per 1000 — no longer branch-cheap"
    );

    // Gate 2: an analysis with obs disabled must not be slower than the
    // same analysis paying for metrics (1.25x headroom for scheduler
    // noise on shared runners).
    let off_t = median_of(&h, "obs/analyze_disabled");
    let on_t = median_of(&h, "obs/analyze_metrics");
    assert!(
        off_t.as_secs_f64() <= on_t.as_secs_f64() * 1.25,
        "obs-disabled analyze ({off_t:?}) slower than metrics-enabled ({on_t:?})"
    );
    // Gate 3: cooperative deadline checks (one clock read per ~1 Ki
    // steps plus a per-replay governor branch) must stay in the noise of
    // a full analysis.
    let governed_t = median_of(&h, "robust/analyze_governed");
    assert!(
        governed_t.as_secs_f64() <= off_t.as_secs_f64() * 1.25,
        "governed analyze ({governed_t:?}) measurably slower than ungoverned ({off_t:?})"
    );

    // Gate 4: an armed-but-idle fault plan (positional targeting checked
    // per replay, never matching) must cost nothing measurable.
    let armed_t = median_of(&h, "robust/analyze_fault_armed_idle");
    assert!(
        armed_t.as_secs_f64() <= off_t.as_secs_f64() * 1.25,
        "fault-armed analyze ({armed_t:?}) measurably slower than fault-free ({off_t:?})"
    );

    // Gate 5: a disarmed cancellation check — one relaxed atomic load
    // per interpreter granule and stage boundary — must stay in the
    // noise of a full analysis.
    let cancel_t = median_of(&h, "robust/analyze_cancel_armed_idle");
    assert!(
        cancel_t.as_secs_f64() <= off_t.as_secs_f64() * 1.25,
        "cancel-armed analyze ({cancel_t:?}) measurably slower than tokenless ({off_t:?})"
    );

    // Gate 6: with no journal configured the per-loop consultation is a
    // branch on `None` — a run without one must not be slower than a run
    // paying for real write-ahead journaling.
    let journaled_t = median_of(&h, "robust/analyze_journaled_cold");
    assert!(
        off_t.as_secs_f64() <= journaled_t.as_secs_f64() * 1.25,
        "journal-disabled analyze ({off_t:?}) slower than a journaling one ({journaled_t:?})"
    );

    // Gate 7: the disarmed journal's store hook must be free. The
    // disarmed replay rewinds by full restore and the armed one by
    // rollback, so at this write footprint (every heap cell dirtied)
    // their rewind work is comparable and the ratio isolates the
    // per-store branch; 1.25x headroom as above, plus a generous
    // absolute per-write ceiling far above a plain interpreter store.
    let disarmed = median_of(&h, "journal/replay_disarmed");
    let journal_armed = median_of(&h, "journal/replay_armed");
    assert!(
        disarmed.as_secs_f64() <= journal_armed.as_secs_f64() * 1.25,
        "disarmed-journal replay ({disarmed:?}) measurably slower than an armed one \
         ({journal_armed:?}) — the disarmed store hook is no longer branch-cheap"
    );
    let per_write = disarmed.as_secs_f64() / JOURNAL_WRITES as f64;
    assert!(
        per_write < 1e-6,
        "disarmed replay costs {:.0} ns per heap write — store hook overhead",
        per_write * 1e9
    );

    println!(
        "obs overhead gates passed: disabled calls {calls:?}/1000, analyze {off_t:?} (off) vs \
         {on_t:?} (metrics), {governed_t:?} (governed), {armed_t:?} (fault armed, idle), \
         {cancel_t:?} (cancel armed, idle), {journaled_t:?} (run journal cold), \
         replay {disarmed:?} (journal disarmed) vs {journal_armed:?} (armed)"
    );
}
