//! Asserts that observability is free when disabled.
//!
//! Two measurements: the raw cost of calling the [`dca_core::Obs`]
//! primitives on a disabled handle (must be branch-on-`Option` cheap,
//! with no clock reads), and a whole `analyze` run with obs disabled vs
//! metrics enabled. The process exits non-zero when either assertion
//! fails, so a `cargo bench --bench obs_overhead` in CI guards the
//! "disabled adds no measurable overhead" claim.

use dca_bench::harness::Harness;
use dca_core::{Dca, DcaConfig, Obs, ObsOptions};
use std::hint::black_box;

fn fixture() -> dca_ir::Module {
    dca_ir::compile(
        "fn main() -> int { let a: [int; 48]; let s: int = 0; \
         @fill: for (let i: int = 0; i < 48; i = i + 1) { a[i] = i * 3 % 17; } \
         @sum: for (let i: int = 0; i < 48; i = i + 1) { s = s + a[i]; } \
         return s; }",
    )
    .expect("fixture compiles")
}

fn median_of(h: &Harness, name: &str) -> std::time::Duration {
    h.results()
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("bench {name} did not run"))
        .median
}

fn main() {
    let mut h = Harness::new().sample_size(10);

    // 1000 disabled-primitive calls per iteration: a count, a span
    // start/end pair, and a trace event. Each must reduce to an Option
    // branch.
    let disabled = Obs::disabled();
    h.bench_function("obs/disabled_calls_x1000", |b| {
        b.iter(|| {
            for i in 0..1000u64 {
                disabled.count("bench.counter", black_box(i));
                let t = disabled.span_start();
                disabled.span_end("bench.span", t);
            }
        })
    });

    let m = fixture();
    let off = Dca::new(DcaConfig::fast());
    h.bench_function("obs/analyze_disabled", |b| {
        b.iter(|| black_box(off.analyze_module(&m).expect("analyze")))
    });
    let on = Dca::new(DcaConfig {
        obs: ObsOptions::metrics(),
        ..DcaConfig::fast()
    });
    h.bench_function("obs/analyze_metrics", |b| {
        b.iter(|| black_box(on.analyze_module(&m).expect("analyze")))
    });

    h.finish();

    // Gate 1: a disabled primitive call must cost nanoseconds, not
    // microseconds. 1000 calls (3 primitives each) under 50 µs leaves a
    // ~15 ns/call budget — an order of magnitude above the real cost,
    // far below anything lock- or clock-bound.
    let calls = median_of(&h, "obs/disabled_calls_x1000");
    assert!(
        calls.as_micros() < 50,
        "disabled obs calls cost {calls:?} per 1000 — no longer branch-cheap"
    );

    // Gate 2: an analysis with obs disabled must not be slower than the
    // same analysis paying for metrics (1.25x headroom for scheduler
    // noise on shared runners).
    let off_t = median_of(&h, "obs/analyze_disabled");
    let on_t = median_of(&h, "obs/analyze_metrics");
    assert!(
        off_t.as_secs_f64() <= on_t.as_secs_f64() * 1.25,
        "obs-disabled analyze ({off_t:?}) slower than metrics-enabled ({on_t:?})"
    );
    println!(
        "obs overhead gates passed: disabled calls {calls:?}/1000, analyze {off_t:?} (off) vs {on_t:?} (metrics)"
    );
}
