//! Measures how replay rewind cost scales with heap size, and gates the
//! tentpole claim of the incremental-restore work: a journaled
//! [`dca_interp::Machine::rollback`] costs O(writes), so at a fixed write
//! footprint it must stay flat as the program's heap grows, while the
//! full-clone [`dca_interp::Machine::restore`] path grows linearly with
//! the heap it copies back.
//!
//! Each benchmark executes the same replay body (a loop writing `W` cells
//! of an `H`-cell global array) and then rewinds it, so the full-vs-
//! journal difference isolates the rewind itself. The process exits
//! non-zero when the scaling claims fail, so `cargo bench --bench
//! restore_scaling` doubles as a CI gate (DESIGN.md §13).

use dca_bench::harness::Harness;
use dca_interp::{Machine, NoHooks};
use std::time::Duration;

/// Heap sizes swept (cells in the global array). The largest point is
/// where full-clone restore pays for ~128 Ki cells per rewind.
const HEAPS: &[usize] = &[1 << 10, 1 << 14, 1 << 17];

/// Write footprints swept (cells the replay body actually dirties).
const WRITES: &[usize] = &[16, 256];

fn fixture(heap: usize, writes: usize) -> dca_ir::Module {
    dca_ir::compile(&format!(
        "let g: [int; {heap}];\n\
         fn main() -> int {{\n\
           let s: int = 0;\n\
           for (let i: int = 0; i < {writes}; i = i + 1) {{\n\
             g[i] = g[i] + i; s = s + g[i];\n\
           }}\n\
           return s;\n\
         }}"
    ))
    .expect("fixture compiles")
}

fn median_of(h: &Harness, name: &str) -> Duration {
    h.results()
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("bench {name} did not run"))
        .median
}

fn main() {
    let mut h = Harness::new().sample_size(10);

    for &writes in WRITES {
        for &heap in HEAPS {
            let m = fixture(heap, writes);
            let main_fn = m.main().expect("main");
            let mut machine = Machine::new(&m);
            machine.push_call(main_fn, &[]).expect("push");
            let snap = machine.snapshot();

            // Baseline: replay to completion, then rewind by restoring
            // the full snapshot (clones all `heap` cells back).
            h.bench_function(&format!("restore/full/h{heap}_w{writes}"), |b| {
                b.iter(|| {
                    machine.run(&mut NoHooks, u64::MAX).expect("replay");
                    machine.restore(&snap);
                })
            });

            // Tentpole: the same replay under an armed journal, rewound
            // by rolling back only the `writes` dirtied cells.
            machine.restore(&snap);
            h.bench_function(&format!("restore/journal/h{heap}_w{writes}"), |b| {
                b.iter(|| {
                    machine.begin_journal();
                    machine.run(&mut NoHooks, u64::MAX).expect("replay");
                    machine.rollback();
                })
            });
        }
    }

    h.finish();

    let h_min = HEAPS[0];
    let h_max = *HEAPS.last().expect("non-empty sweep");
    for &writes in WRITES {
        let j_min = median_of(&h, &format!("restore/journal/h{h_min}_w{writes}"));
        let j_max = median_of(&h, &format!("restore/journal/h{h_max}_w{writes}"));
        // Gate 1: journaled rewind is flat in heap size — the same write
        // footprint must cost the same whether the heap holds 1 Ki or
        // 128 Ki cells (2x headroom for scheduler noise; the full-clone
        // path grows ~128x over the same sweep).
        assert!(
            j_max.as_secs_f64() <= j_min.as_secs_f64() * 2.0,
            "journaled rewind not flat in heap size at w={writes}: \
             {j_min:?} at {h_min} cells vs {j_max:?} at {h_max} cells"
        );
    }

    // Gate 2: at the largest heap point the journaled path must beat the
    // full-clone path by at least 5x (the ISSUE's headline number, taken
    // at the smaller write footprint where rewind dominates the replay).
    let w = WRITES[0];
    let full = median_of(&h, &format!("restore/full/h{h_max}_w{w}"));
    let journal = median_of(&h, &format!("restore/journal/h{h_max}_w{w}"));
    assert!(
        journal.as_secs_f64() * 5.0 <= full.as_secs_f64(),
        "journaled rewind ({journal:?}) is not >=5x faster than full-clone \
         restore ({full:?}) at {h_max} heap cells, w={w}"
    );

    println!(
        "restore scaling gates passed: at {h_max} cells / {w} writes, \
         full {full:?} vs journal {journal:?} ({:.1}x)",
        full.as_secs_f64() / journal.as_secs_f64()
    );
}
