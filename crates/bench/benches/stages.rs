//! Benches for the individual DCA pipeline stages (paper Fig. 3): static
//! analyses, golden recording, and permuted replay.

use dca_analysis::{EffectMap, IteratorSlice, Liveness};
use dca_bench::harness::Harness;
use dca_core::{record_golden, run_replay, DcaConfig, ReplayController};
use dca_interp::Machine;
use dca_ir::FuncView;
use std::hint::black_box;

fn fixture() -> (dca_ir::Module, dca_ir::LoopRef, Vec<dca_interp::Value>) {
    let p = dca_suite::by_name("ep").expect("ep exists");
    let m = p.module();
    let l = p.loop_by_tag(&m, "blocks").expect("blocks loop");
    (m, l, p.targs())
}

fn bench_static_stage(h: &mut Harness) {
    let (m, lref, _) = fixture();
    h.bench_function("static/effect_map", |b| {
        b.iter(|| black_box(EffectMap::new(&m)))
    });
    h.bench_function("static/func_view", |b| {
        b.iter(|| black_box(FuncView::new(&m, lref.func)))
    });
    let view = FuncView::new(&m, lref.func);
    h.bench_function("static/liveness", |b| {
        b.iter(|| black_box(Liveness::new(&view)))
    });
    let effects = EffectMap::new(&m);
    let l = view.loops.get(lref.loop_id);
    h.bench_function("static/iterator_recognition", |b| {
        b.iter(|| black_box(IteratorSlice::compute_with(&view, l, &effects)))
    });
}

fn bench_dynamic_stage(h: &mut Harness) {
    let (m, lref, args) = fixture();
    let view = FuncView::new(&m, lref.func);
    let l = view.loops.get(lref.loop_id);
    let slice = IteratorSlice::compute(&view, l);
    let main = m.main().expect("main");
    h.bench_function("dynamic/golden_recording", |b| {
        b.iter(|| {
            let mut machine = Machine::new(&m);
            black_box(
                record_golden(
                    &mut machine,
                    main,
                    &args,
                    lref.func,
                    l,
                    &slice,
                    0,
                    DcaConfig::DEFAULT_MAX_TRIP,
                    u64::MAX,
                )
                .expect("record"),
            )
        })
    });
    let mut machine = Machine::new(&m);
    let golden = record_golden(
        &mut machine,
        main,
        &args,
        lref.func,
        l,
        &slice,
        0,
        DcaConfig::DEFAULT_MAX_TRIP,
        u64::MAX,
    )
    .expect("record");
    let perm: Vec<usize> = (0..golden.iters.len()).rev().collect();
    h.bench_function("dynamic/permuted_replay", |b| {
        b.iter(|| {
            machine.restore(&golden.snapshot);
            let mut ctl =
                ReplayController::new(lref.func, m.func(lref.func), l, &slice, &golden, &perm);
            black_box(run_replay(&mut machine, &mut ctl, false, u64::MAX))
        })
    });
    h.bench_function("dynamic/full_loop_test", |b| {
        let dca = dca_core::Dca::new(DcaConfig::fast());
        b.iter(|| black_box(dca.test_loop(&m, lref, &args).expect("test")))
    });
}

fn main() {
    let mut h = Harness::new().sample_size(20);
    bench_static_stage(&mut h);
    bench_dynamic_stage(&mut h);
    h.finish();
}
