//! Asserts the footprint dependence subsystem (DESIGN.md §18) is free
//! when disarmed and cheap when armed.
//!
//! Measurements: golden recording of a read/write-heavy loop through the
//! plain [`dca_core::record_golden`] path (what the executor uses when
//! neither the pre-check nor [`Schedule::Auto`] wants a profile) vs the
//! profiled path ([`dca_core::record_golden_profiled`]), which pays for
//! the per-access footprint probe; and a whole [`execute_loop`] run with
//! the pre-check disabled vs enabled. Two claims are gated, so a
//! `cargo bench --bench deps_overhead` in CI guards them:
//!
//! * **Disarmed = zero cost** — the unprofiled paths must not be slower
//!   than the profiled ones (1.25x headroom for scheduler noise).
//! * **Armed ≤ 1.3x** — the probe (an event-log push per heap access
//!   plus a commit-time sort-and-scan per iteration) must keep profiled
//!   recording within 1.3x of plain recording, and the end-to-end
//!   pre-checked execution within 1.3x of an unchecked one.
//!
//! Gates compare each benchmark's *fastest* sample (see [`min_of`]).

use dca_analysis::{EffectMap, IteratorSlice};
use dca_bench::harness::Harness;
use dca_core::{record_golden, record_golden_profiled, DcaConfig, Obs};
use dca_interp::Machine;
use dca_ir::FuncView;
use dca_parallel::{execute_loop, ExecConfig};
use std::hint::black_box;

/// A doall whose payload both reads and writes the heap every iteration,
/// with the modular arithmetic a real kernel does between accesses —
/// representative of the suite's loops (the probe's per-access cost is
/// fixed, so an artificial all-memory loop would only measure how little
/// other work the loop does).
fn fixture() -> (dca_ir::Module, dca_ir::LoopRef) {
    let m = dca_ir::compile(
        "fn main() -> int { let a: [int; 1024]; let b: [int; 16]; let s: int = 0; \
         for (let i: int = 0; i < 16; i = i + 1) { b[i] = i * 7 + 1; } \
         @hot: for (let i: int = 0; i < 1024; i = i + 1) { \
           let x: int = a[i]; let y: int = b[i % 16]; \
           let t: int = (x * 3 + y) % 1021; \
           let u: int = (t * t + i * 5 + 3) % 4093; \
           a[i] = u + (y - t) * 2; } \
         for (let i: int = 0; i < 1024; i = i + 1) { s = s + a[i]; } \
         return s; }",
    )
    .expect("fixture compiles");
    let lref = dca_ir::all_loops(&m)
        .into_iter()
        .find(|(_, t)| t.as_deref() == Some("hot"))
        .expect("tagged loop")
        .0;
    (m, lref)
}

/// Fastest sample — what the gates compare. Minima approximate the
/// uncontended speed of each path; medians wobble with scheduler noise
/// far more than the margins under test.
fn min_of(h: &Harness, name: &str) -> std::time::Duration {
    h.results()
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("bench {name} did not run"))
        .min
}

fn main() {
    let mut h = Harness::new().sample_size(10);
    let (m, lref) = fixture();
    let cfg = DcaConfig::fast();
    let main_fn = m.main().expect("main");
    let view = FuncView::new(&m, lref.func);
    let l = view.loops.get(lref.loop_id).clone();
    let effects = EffectMap::new(&m);
    let slice = IteratorSlice::compute_with(&view, &l, &effects);
    let func_ir = m.func(lref.func);

    h.bench_function("deps/record_plain", |b| {
        b.iter(|| {
            let mut rec = Machine::new(&m);
            let g = record_golden(
                &mut rec,
                main_fn,
                &[],
                lref.func,
                &l,
                &slice,
                0,
                cfg.max_trip,
                cfg.max_steps,
            )
            .expect("record");
            black_box(g.iters.len())
        })
    });
    h.bench_function("deps/record_profiled", |b| {
        b.iter(|| {
            let mut rec = Machine::new(&m);
            let (g, p) = record_golden_profiled(
                &mut rec,
                main_fn,
                &[],
                lref.func,
                func_ir,
                &l,
                &slice,
                0,
                cfg.max_trip,
                cfg.max_steps,
            )
            .expect("record");
            assert_eq!(p.iters.len(), g.iters.len(), "full profile expected");
            black_box(g.iters.len())
        })
    });

    let obs = Obs::disabled();
    for (name, precheck) in [("deps/exec_disarmed", false), ("deps/exec_armed", true)] {
        let ecfg = ExecConfig {
            threads: 2,
            deps_precheck: precheck,
            ..ExecConfig::from_dca(&cfg)
        };
        h.bench_function(name, |b| {
            b.iter(|| {
                let out = execute_loop(&m, &[], lref, &ecfg, &obs).expect("execute");
                assert!(out.validated, "fixture must validate");
                out.fingerprint
            })
        });
    }

    h.finish();

    // Gate 1: the plain recording path must pay nothing for the probe's
    // existence — it has no hooks at all, so it can only be slower than
    // the profiled path through a regression.
    let plain = min_of(&h, "deps/record_plain");
    let profiled = min_of(&h, "deps/record_profiled");
    assert!(
        plain.as_secs_f64() <= profiled.as_secs_f64() * 1.25,
        "plain recording ({plain:?}) slower than profiled ({profiled:?}) — \
         the disarmed path is no longer free"
    );
    // Gate 2: the armed probe must stay within its 1.3x budget on a
    // heap-access-heavy loop.
    assert!(
        profiled.as_secs_f64() <= plain.as_secs_f64() * 1.3,
        "profiled recording ({profiled:?}) exceeds 1.3x plain ({plain:?}) — \
         the footprint probe got expensive"
    );

    // Gates 3 and 4: same two claims end to end through `execute_loop`,
    // where the armed run also pays for the overlap sweep itself.
    let disarmed = min_of(&h, "deps/exec_disarmed");
    let armed = min_of(&h, "deps/exec_armed");
    assert!(
        disarmed.as_secs_f64() <= armed.as_secs_f64() * 1.25,
        "pre-check-disabled execution ({disarmed:?}) slower than enabled ({armed:?})"
    );
    assert!(
        armed.as_secs_f64() <= disarmed.as_secs_f64() * 1.3,
        "pre-checked execution ({armed:?}) exceeds 1.3x unchecked ({disarmed:?})"
    );

    println!(
        "deps overhead gates passed: record {plain:?} (plain) vs {profiled:?} (profiled), \
         execute {disarmed:?} (disarmed) vs {armed:?} (armed)"
    );
}
