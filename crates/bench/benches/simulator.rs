//! Criterion benches for the multicore simulator: scaling with core count
//! and scheduling policy (the substrate behind Figs. 5-7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dca_parallel::{simulate_invocation, Schedule, SimConfig};
use std::hint::black_box;

fn bench_core_scaling(c: &mut Criterion) {
    let costs: Vec<u64> = (0..7200).map(|i| 50 + (i * 37) % 100).collect();
    let mut g = c.benchmark_group("sim/core_scaling");
    for cores in [1usize, 4, 16, 72] {
        g.bench_with_input(BenchmarkId::from_parameter(cores), &cores, |b, &cores| {
            let cfg = SimConfig::with_cores(cores);
            b.iter(|| black_box(simulate_invocation(&costs, &cfg)))
        });
    }
    g.finish();
}

fn bench_schedules(c: &mut Criterion) {
    let costs: Vec<u64> = (0..7200).map(|i| 1000 - (i % 1000) as u64).collect();
    let mut g = c.benchmark_group("sim/schedule");
    g.bench_function("static_block", |b| {
        let cfg = SimConfig::paper_host();
        b.iter(|| black_box(simulate_invocation(&costs, &cfg)))
    });
    for chunk in [1usize, 8, 64] {
        g.bench_with_input(
            BenchmarkId::new("dynamic", chunk),
            &chunk,
            |b, &chunk| {
                let cfg = SimConfig {
                    schedule: Schedule::Dynamic { chunk },
                    ..SimConfig::paper_host()
                };
                b.iter(|| black_box(simulate_invocation(&costs, &cfg)))
            },
        );
    }
    g.finish();
}

fn bench_whole_program(c: &mut Criterion) {
    let p = dca_suite::by_name("ep").expect("ep exists");
    let m = p.module();
    let args = p.targs();
    let hot = p.loop_by_tag(&m, "blocks").expect("hot loop");
    let sel = std::collections::BTreeSet::from([hot]);
    c.bench_function("sim/whole_program_speedup", |b| {
        b.iter(|| {
            black_box(
                dca_parallel::speedup_for_selection(&m, &args, &sel, &SimConfig::paper_host())
                    .expect("simulate"),
            )
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_core_scaling, bench_schedules, bench_whole_program
);
criterion_main!(benches);
