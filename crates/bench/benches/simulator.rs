//! Benches for the multicore simulator: scaling with core count and
//! scheduling policy (the substrate behind Figs. 5-7).

use dca_bench::harness::Harness;
use dca_parallel::{simulate_invocation, Schedule, SimConfig};
use std::hint::black_box;

fn bench_core_scaling(h: &mut Harness) {
    let costs: Vec<u64> = (0..7200).map(|i| 50 + (i * 37) % 100).collect();
    for cores in [1usize, 4, 16, 72] {
        h.bench_function(&format!("sim/core_scaling/{cores}"), |b| {
            let cfg = SimConfig::with_cores(cores);
            b.iter(|| black_box(simulate_invocation(&costs, &cfg)))
        });
    }
}

fn bench_schedules(h: &mut Harness) {
    let costs: Vec<u64> = (0..7200).map(|i| 1000 - (i % 1000) as u64).collect();
    h.bench_function("sim/schedule/static_block", |b| {
        let cfg = SimConfig::paper_host();
        b.iter(|| black_box(simulate_invocation(&costs, &cfg)))
    });
    for chunk in [1usize, 8, 64] {
        h.bench_function(&format!("sim/schedule/dynamic/{chunk}"), |b| {
            let cfg = SimConfig {
                schedule: Schedule::Dynamic { chunk },
                ..SimConfig::paper_host()
            };
            b.iter(|| black_box(simulate_invocation(&costs, &cfg)))
        });
    }
}

fn bench_whole_program(h: &mut Harness) {
    let p = dca_suite::by_name("ep").expect("ep exists");
    let m = p.module();
    let args = p.targs();
    let hot = p.loop_by_tag(&m, "blocks").expect("hot loop");
    let sel = std::collections::BTreeSet::from([hot]);
    h.bench_function("sim/whole_program_speedup", |b| {
        b.iter(|| {
            black_box(
                dca_parallel::speedup_for_selection(&m, &args, &sel, &SimConfig::paper_host())
                    .expect("simulate"),
            )
        })
    });
}

fn main() {
    let mut h = Harness::new().sample_size(20);
    bench_core_scaling(&mut h);
    bench_schedules(&mut h);
    bench_whole_program(&mut h);
    h.finish();
}
