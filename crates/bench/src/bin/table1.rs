//! Regenerates Table I: NPB loops reported parallelizable by the dynamic
//! baselines (Dependence Profiling, DiscoPoP-style) and as commutative by
//! DCA. Run with `--fast` for the small test workloads.

fn main() {
    let fast = dca_bench::fast_mode();
    println!("Table I: NPB loops parallelizable (dynamic techniques) vs commutative (DCA)");
    println!(
        "{:<6} {:>6} {:>18} {:>10} {:>6}",
        "Bmk", "Loops", "DepProfiling", "DiscoPoP", "DCA"
    );
    let mut tot = (0, 0, 0, 0);
    for p in dca_suite::npb::programs() {
        let (_m, r) = dca_bench::detect_all(p, fast);
        let (dp, dpp, dca) = (
            r.depprof.parallel_count(),
            r.discopop.parallel_count(),
            r.dca.parallel_count(),
        );
        println!(
            "{:<6} {:>6} {:>18} {:>10} {:>6}",
            p.name.to_uppercase(),
            r.total,
            dp,
            dpp,
            dca
        );
        tot = (tot.0 + r.total, tot.1 + dp, tot.2 + dpp, tot.3 + dca);
    }
    println!(
        "{:<6} {:>6} {:>18} {:>10} {:>6}",
        "Total", tot.0, tot.1, tot.2, tot.3
    );
}
