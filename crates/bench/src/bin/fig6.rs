//! Regenerates Fig. 6: overall NPB speedup by Idioms, Polly-style,
//! ICC-style and DCA parallelization on the simulated 72-core host.
//! DCA and Idioms use the expert profitability selection (paper §V-C2);
//! the static tools parallelize what they detect. Run with `--fast` for
//! the small test workloads.

use dca_ir::LoopRef;
use std::collections::BTreeSet;

fn main() {
    let fast = dca_bench::fast_mode();
    println!("Fig. 6: NPB speedup by technique (simulated 72 cores)");
    println!(
        "{:<6} {:>8} {:>8} {:>8} {:>8}",
        "Bmk", "Idioms", "Polly", "ICC", "DCA"
    );
    let mut cols: [Vec<f64>; 4] = [vec![], vec![], vec![], vec![]];
    for p in dca_suite::npb::programs() {
        let (module, r) = dca_bench::detect_all(p, fast);
        let sel_of = |rep: &dca_baselines::DetectionReport| -> BTreeSet<LoopRef> {
            rep.parallel_loops().collect()
        };
        let s_idioms = dca_bench::speedup(
            p,
            &module,
            &dca_bench::profitable_selection(p, &module, &sel_of(&r.idioms)),
            fast,
        );
        let s_polly = dca_bench::speedup(p, &module, &sel_of(&r.polly), fast);
        let s_icc = dca_bench::speedup(p, &module, &sel_of(&r.icc), fast);
        let s_dca = dca_bench::speedup(
            p,
            &module,
            &dca_bench::profitable_selection(p, &module, &sel_of(&r.dca)),
            fast,
        );
        println!(
            "{:<6} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            p.name.to_uppercase(),
            s_idioms,
            s_polly,
            s_icc,
            s_dca
        );
        for (c, s) in cols.iter_mut().zip([s_idioms, s_polly, s_icc, s_dca]) {
            c.push(s);
        }
    }
    println!(
        "{:<6} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
        "GMean",
        dca_bench::gmean(&cols[0]),
        dca_bench::gmean(&cols[1]),
        dca_bench::gmean(&cols[2]),
        dca_bench::gmean(&cols[3])
    );
    dca_bench::print_engine_speedup_footer(fast);
}
