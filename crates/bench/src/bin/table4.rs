//! Regenerates Table IV: DCA's detection precision against the expert
//! ground truth (false positives/negatives) and the sequential coverage of
//! the loops DCA vs the combined static techniques detect. Run with
//! `--fast` for the small test workloads.

use dca_ir::LoopRef;
use std::collections::BTreeSet;

fn main() {
    let fast = dca_bench::fast_mode();
    println!("Table IV: DCA detection precision and coverage on NPB");
    println!(
        "{:<6} {:>6} {:>6} {:>9} {:>9} {:>9} {:>12}",
        "Bmk", "Loops", "Found", "FalsePos", "FalseNeg", "DCACov%", "StaticCov%"
    );
    for p in dca_suite::npb::programs() {
        let (module, r) = dca_bench::detect_all(p, fast);
        let truth = dca_bench::tags_to_loops(p, &module, p.expert.parallel_tags);
        let dca: BTreeSet<LoopRef> = r.dca.parallel_loops().collect();
        let fp = dca.difference(&truth).count();
        let fneg = truth
            .iter()
            .filter(|l| {
                r.dca_verdicts
                    .get(**l)
                    .map(|d| matches!(d.verdict, dca_core::LoopVerdict::NonCommutative(_)))
                    .unwrap_or(false)
            })
            .count();
        let cov_dca = dca_bench::coverage_pct(p, &module, &dca, fast);
        let cov_static = dca_bench::coverage_pct(p, &module, &r.combined_static(), fast);
        println!(
            "{:<6} {:>6} {:>6} {:>9} {:>9} {:>9.0} {:>12.0}",
            p.name.to_uppercase(),
            r.total,
            dca.len(),
            fp,
            fneg,
            cov_dca,
            cov_static
        );
    }
}
