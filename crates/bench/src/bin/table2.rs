//! Regenerates Table II: PLDS-based loops that DCA detects as commutative
//! while every baseline fails. Coverage is measured on our workloads; the
//! potential-speedup and technique columns reproduce the literature values
//! the paper tabulates. Run with `--fast` for the small test workloads.

use std::collections::BTreeSet;

fn main() {
    let fast = dca_bench::fast_mode();
    println!("Table II: PLDS loops detected as commutative by DCA (baselines detect none)");
    println!(
        "{:<10} {:<14} {:<24} {:>8} {:>8} {:>7} {:>9} {:<16} {:>9} {:>9}",
        "Bmk",
        "Origin",
        "Function",
        "Cov(%)",
        "Paper%",
        "Loop x",
        "Overall x",
        "Technique",
        "DCA",
        "Baseline"
    );
    for p in dca_suite::plds::programs() {
        let (module, r) = dca_bench::detect_all(p, fast);
        let paper = p.expert.paper.expect("plds programs carry paper metadata");
        let key = p
            .loop_by_tag(&module, p.expert.profitable_tags[0])
            .expect("key loop");
        let cov = dca_bench::coverage_pct(p, &module, &BTreeSet::from([key]), fast);
        let baseline_hits = r.depprof.is_parallel(key) as usize
            + r.discopop.is_parallel(key) as usize
            + r.idioms.is_parallel(key) as usize
            + r.polly.is_parallel(key) as usize
            + r.icc.is_parallel(key) as usize;
        let fmt_opt = |v: Option<f64>| v.map(|x| format!("{x:.2}")).unwrap_or("-".into());
        println!(
            "{:<10} {:<14} {:<24} {:>8.0} {:>8.0} {:>7} {:>9} {:<16} {:>9} {:>9}",
            p.name,
            paper.origin,
            paper.function,
            cov,
            paper.coverage_pct,
            fmt_opt(paper.loop_speedup),
            fmt_opt(paper.overall_speedup),
            paper.technique,
            if r.dca.is_parallel(key) { "yes" } else { "NO!" },
            baseline_hits
        );
    }
}
