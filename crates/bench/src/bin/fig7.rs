//! Regenerates Fig. 7: DCA vs expert parallelization of NPB — loop-only
//! expert (the data-parallel loops an expert selects) and the full expert
//! parallelization including beyond-loop sections. Run with `--fast` for
//! the small test workloads.

use dca_ir::LoopRef;
use std::collections::BTreeSet;

fn main() {
    let fast = dca_bench::fast_mode();
    println!("Fig. 7: DCA vs expert parallelization on NPB (simulated 72 cores)");
    println!(
        "{:<6} {:>8} {:>18} {:>14}",
        "Bmk", "DCA", "ExpertLoopOnly", "ExpertFull"
    );
    let mut cols: [Vec<f64>; 3] = [vec![], vec![], vec![]];
    for p in dca_suite::npb::programs() {
        let (module, r) = dca_bench::detect_all(p, fast);
        let detected: BTreeSet<LoopRef> = r.dca.parallel_loops().collect();
        let s_dca = dca_bench::speedup(
            p,
            &module,
            &dca_bench::profitable_selection(p, &module, &detected),
            fast,
        );
        let (s_loop, s_full) = dca_bench::expert_speedups(p, &module, fast);
        println!(
            "{:<6} {:>8.2} {:>18.2} {:>14.2}",
            p.name.to_uppercase(),
            s_dca,
            s_loop,
            s_full
        );
        for (c, s) in cols.iter_mut().zip([s_dca, s_loop, s_full]) {
            c.push(s);
        }
    }
    println!(
        "{:<6} {:>8.2} {:>18.2} {:>14.2}",
        "GMean",
        dca_bench::gmean(&cols[0]),
        dca_bench::gmean(&cols[1]),
        dca_bench::gmean(&cols[2])
    );
}
