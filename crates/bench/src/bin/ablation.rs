//! Ablation study for the permutation presets (paper §IV-B2 / §V-D): how
//! many permutations does the dynamic stage need before its verdicts match
//! exhaustive enumeration?
//!
//! For every NPB benchmark, DCA runs under reverse-only, k random shuffles
//! (k = 1, 3, 8) and exhaustive enumeration on small trip counts; the
//! table reports commutative counts and disagreements against the
//! strongest configuration. The paper's claim (§V-D) is that the pragmatic
//! presets lose nothing in practice — the disagreement columns should be
//! zero. Run with `--fast` for small workloads.

use dca_core::{Dca, DcaConfig, DcaReport, PermutationSet};

fn analyze(p: &dca_suite::SuiteProgram, preset: PermutationSet, fast: bool) -> DcaReport {
    let m = p.module();
    let args = if fast { p.targs() } else { p.args() };
    Dca::new(DcaConfig {
        permutations: preset,
        ..DcaConfig::default()
    })
    .analyze(&m, &args)
    .expect("suite programs have main")
}

fn main() {
    let fast = dca_bench::fast_mode();
    let presets: Vec<(&str, PermutationSet)> = vec![
        ("reverse", PermutationSet::ReverseOnly),
        ("shuf1", PermutationSet::Presets { shuffles: 1 }),
        ("shuf3", PermutationSet::Presets { shuffles: 3 }),
        ("shuf8", PermutationSet::Presets { shuffles: 8 }),
        (
            "exh6",
            PermutationSet::Exhaustive {
                max_trip: 6,
                fallback_shuffles: 8,
            },
        ),
    ];
    println!("Ablation: commutative loops per permutation preset (disagreements vs exh6)");
    print!("{:<6}", "Bmk");
    for (name, _) in &presets {
        print!(" {name:>9}");
    }
    println!(" {:>12}", "disagree");
    let mut total_disagree = 0usize;
    for p in dca_suite::npb::programs() {
        let reports: Vec<DcaReport> = presets
            .iter()
            .map(|(_, preset)| analyze(p, preset.clone(), fast))
            .collect();
        print!("{:<6}", p.name.to_uppercase());
        for r in &reports {
            print!(" {:>9}", r.commutative_count());
        }
        // Disagreements: loops whose verdict class (commutative or not)
        // differs between any preset and the reference (last column).
        let reference = reports.last().expect("presets non-empty");
        let mut disagree = 0;
        for r in &reports[..reports.len() - 1] {
            for (a, b) in r.iter().zip(reference.iter()) {
                if a.verdict.is_commutative() != b.verdict.is_commutative() {
                    disagree += 1;
                }
            }
        }
        total_disagree += disagree;
        println!(" {disagree:>12}");
    }
    println!(
        "\ntotal verdict disagreements across presets: {total_disagree} \
         (the paper's §V-D expects ~0)"
    );

    // Second study: verification scope. The whole-program scope is §III's
    // definition; the loop-exit digest is cheaper but stricter (transient
    // structure differences count). Loops the strict scope rejects while
    // the program scope accepts are exactly the "transient state relaxed
    // by liveness" cases (paper §II-C).
    println!("\nVerification-scope study: commutative loops per scope");
    println!(
        "{:<6} {:>12} {:>10} {:>22}",
        "Bmk", "ProgramEnd", "LoopExit", "strictly-rejected"
    );
    for p in dca_suite::npb::programs() {
        let m = p.module();
        let args = if fast { p.targs() } else { p.args() };
        let pe = Dca::new(DcaConfig::default())
            .analyze(&m, &args)
            .expect("analyze");
        let le = Dca::new(DcaConfig {
            verify_scope: dca_core::VerifyScope::LoopExit,
            ..DcaConfig::default()
        })
        .analyze(&m, &args)
        .expect("analyze");
        let stricter = pe
            .iter()
            .zip(le.iter())
            .filter(|(a, b)| a.verdict.is_commutative() && !b.verdict.is_commutative())
            .count();
        println!(
            "{:<6} {:>12} {:>10} {:>22}",
            p.name.to_uppercase(),
            pe.commutative_count(),
            le.commutative_count(),
            stricter
        );
    }
    dca_bench::print_engine_speedup_footer(fast);
}
