//! Regenerates Table III: NPB loops reported parallelizable by the static
//! baselines (Idioms, Polly-style, ICC-style), their union ("Combined
//! Static"), and DCA. Run with `--fast` for the small test workloads.

fn main() {
    let fast = dca_bench::fast_mode();
    println!("Table III: NPB loops parallelizable (static techniques) vs commutative (DCA)");
    println!(
        "{:<6} {:>6} {:>11} {:>11} {:>11} {:>15} {:>11}",
        "Bmk", "Loops", "Idioms", "Polly", "ICC", "CombinedStatic", "DCA"
    );
    let pct = |n: usize, d: usize| format!("{n} ({:.0}%)", 100.0 * n as f64 / d.max(1) as f64);
    let mut tot = (0usize, 0usize, 0usize, 0usize, 0usize, 0usize);
    for p in dca_suite::npb::programs() {
        let (_m, r) = dca_bench::detect_all(p, fast);
        let (id, po, ic) = (
            r.idioms.parallel_count(),
            r.polly.parallel_count(),
            r.icc.parallel_count(),
        );
        let comb = r.combined_static().len();
        let dca = r.dca.parallel_count();
        println!(
            "{:<6} {:>6} {:>11} {:>11} {:>11} {:>15} {:>11}",
            p.name.to_uppercase(),
            r.total,
            pct(id, r.total),
            pct(po, r.total),
            pct(ic, r.total),
            pct(comb, r.total),
            pct(dca, r.total)
        );
        tot = (
            tot.0 + r.total,
            tot.1 + id,
            tot.2 + po,
            tot.3 + ic,
            tot.4 + comb,
            tot.5 + dca,
        );
    }
    println!(
        "{:<6} {:>6} {:>11} {:>11} {:>11} {:>15} {:>11}",
        "Total",
        tot.0,
        pct(tot.1, tot.0),
        pct(tot.2, tot.0),
        pct(tot.3, tot.0),
        pct(tot.4, tot.0),
        pct(tot.5, tot.0)
    );
    dca_bench::print_engine_speedup_footer(fast);
}
