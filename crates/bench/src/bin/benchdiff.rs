//! Compares two `dca-bench` JSON reports and gates on regressions.
//!
//! ```text
//! benchdiff <baseline.json> <current.json> [--threshold <pct>]
//!           [--warn-only] [--inject-slowdown <factor>]
//!           [--write-baseline <path>] [--json <path>]
//! ```
//!
//! A metric regresses when its median is more than `--threshold` percent
//! (default 10) slower than the baseline. Exit codes: 0 when no metric
//! regressed (or `--warn-only` was passed), 1 when the gate fails, 2 on
//! usage or I/O errors. `--inject-slowdown` multiplies the *current*
//! medians before diffing — CI uses it to prove the gate actually trips.
//! `--write-baseline` merges the current report into the baseline file
//! (used to refresh `bench/baseline.json`). `--json` additionally writes
//! the comparison as machine-readable JSON (schema `dca-benchdiff/1`).

use dca_bench::report::{diff_reports, BenchReport};
use std::process::ExitCode;

struct Args {
    baseline: String,
    current: String,
    threshold: f64,
    warn_only: bool,
    inject_slowdown: Option<f64>,
    write_baseline: Option<String>,
    json_out: Option<String>,
}

const USAGE: &str = "usage: benchdiff <baseline.json> <current.json> \
    [--threshold <pct>] [--warn-only] [--inject-slowdown <factor>] \
    [--write-baseline <path>] [--json <path>]";

fn parse_args() -> Result<Args, String> {
    let mut free = Vec::new();
    let mut threshold = 10.0;
    let mut warn_only = false;
    let mut inject_slowdown = None;
    let mut write_baseline = None;
    let mut json_out = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                threshold = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--threshold needs a number")?;
            }
            "--warn-only" => warn_only = true,
            "--inject-slowdown" => {
                inject_slowdown = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--inject-slowdown needs a factor")?,
                );
            }
            "--write-baseline" => {
                write_baseline = Some(it.next().ok_or("--write-baseline needs a path")?);
            }
            "--json" => {
                json_out = Some(it.next().ok_or("--json needs a path")?);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}\n{USAGE}"));
            }
            other => free.push(other.to_string()),
        }
    }
    if free.len() != 2 {
        return Err(USAGE.to_string());
    }
    let mut free = free.into_iter();
    Ok(Args {
        baseline: free.next().expect("checked"),
        current: free.next().expect("checked"),
        threshold,
        warn_only,
        inject_slowdown,
        write_baseline,
        json_out,
    })
}

fn load(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    BenchReport::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let mut baseline = load(&args.baseline)?;
    let mut current = load(&args.current)?;
    if let Some(factor) = args.inject_slowdown {
        current.inject_slowdown(factor);
        println!("injected {factor}x slowdown into {}", args.current);
    }
    let diff = diff_reports(&baseline, &current, args.threshold);
    print!("{}", diff.render());
    if let Some(path) = &args.json_out {
        std::fs::write(path, diff.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if let Some(path) = &args.write_baseline {
        baseline.merge(&current);
        std::fs::write(path, baseline.to_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("baseline updated: {path}");
    }
    let failed = diff.regressions() > 0;
    if failed && args.warn_only {
        println!(
            "WARNING: {} metric(s) regressed beyond {}% (warn-only mode)",
            diff.regressions(),
            args.threshold
        );
        return Ok(true);
    }
    Ok(!failed)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
