//! Debug helper: prints per-loop detection results for one suite program.
use dca_baselines::*;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "ep".into());
    let p = dca_suite::by_name(&name).expect("unknown program");
    let m = p.module();
    let args = p.targs();
    let dets = all_detectors(dca_core::DcaConfig::fast());
    let reports: Vec<_> = dets
        .iter()
        .map(|d| (d.technique(), d.detect(&m, &args)))
        .collect();
    println!(
        "{:<12} {}",
        "loop",
        reports
            .iter()
            .map(|(t, _)| format!("{t:>8}"))
            .collect::<String>()
    );
    for (lref, tag) in dca_ir::all_loops(&m) {
        let tag = tag.unwrap_or_else(|| lref.to_string());
        let mut row = format!("{:<12}", tag);
        for (_, r) in &reports {
            row += &format!("{:>8}", if r.is_parallel(lref) { "Y" } else { "." });
        }
        println!("{row}");
        for (t, r) in &reports {
            if let Some(d) = r.get(lref) {
                if std::env::args().nth(2).as_deref() == Some("-v") {
                    println!("    {t}: {}", d.reason);
                }
            }
        }
    }
}
