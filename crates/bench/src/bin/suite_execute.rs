//! Analyzes every suite program, then runs each DCA-proven loop on real
//! threads ([`dca_parallel::execute_loop`]) at several worker counts,
//! differentially validating every parallel run against the sequential
//! oracle and printing one stable line per loop.
//!
//! Two invariants are enforced here, per loop:
//!
//! * **Oracle stability** — the sequential oracle fingerprint must be
//!   identical at every execution width (it is computed from the same
//!   golden recording; a difference means the executor perturbed
//!   recording or replay). The binary exits non-zero on a mismatch.
//! * **No silent corruption** — a width where the merged parallel state
//!   does not match the oracle must surface as a rejection
//!   ([`dca_parallel::ExecError::Diverged`]), never as a validated run.
//!
//! A rejection itself is *not* a failure: dynamic commutativity (paper
//! §III) certifies that reordering whole iterations preserves the
//! outcome, not that iterations are independent of each other's heap
//! writes — timestep-style loops (lu's SSOR sweep, em3d's propagation,
//! mst's greedy growth) are commutative under sequential permutation yet
//! carry cross-iteration flow that snapshot-isolated workers cannot see.
//! The differential validator is exactly the guard that lets the
//! executor attempt such loops and refuse them with evidence (see
//! DESIGN.md §17). Traps, exhausted budgets and oracle mismatches are
//! hard failures.
//!
//! Since the footprint pre-check (DESIGN.md §18) the expected shape is
//! sharper still: loops with genuine cross-iteration heap flow are
//! refused *before any worker spawns* (`refused pre-spawn:` lines, with
//! the first conflicting `(iter_a, iter_b, cell)` witness), and the
//! differential validator remains as defense-in-depth behind them. Set
//! `DCA_DEPS_PRECHECK=0` to disable the pre-check and fall back to
//! validator-only rejection — CI runs both modes and asserts the two
//! refuse exactly the same loops.
//!
//! CI runs this binary twice and diffs stdout: the width sweep is
//! internal (`DCA_EXEC_WIDTHS`, default `1 2 4`), every printed field is
//! deterministic, so any diff means non-deterministic execution or
//! merge. Width-dependent accounting (steals, combines) goes to stderr.

use dca_core::{Dca, DcaConfig, Obs};
use dca_parallel::{execute_loop, ExecConfig, ExecError};
use std::process::ExitCode;

fn widths() -> Vec<usize> {
    let raw = std::env::var("DCA_EXEC_WIDTHS").unwrap_or_else(|_| "1 2 4".into());
    let ws: Vec<usize> = raw
        .split([' ', ','])
        .filter(|t| !t.is_empty())
        .map(|t| t.parse().expect("DCA_EXEC_WIDTHS: positive integers"))
        .collect();
    assert!(!ws.is_empty(), "DCA_EXEC_WIDTHS is empty");
    ws
}

/// `DCA_DEPS_PRECHECK=0` (or `off`) disables the pre-spawn
/// decomposability check so the differential validator alone decides —
/// the agreement mode CI compares against.
fn deps_precheck() -> bool {
    !matches!(
        std::env::var("DCA_DEPS_PRECHECK").as_deref(),
        Ok("0") | Ok("off")
    )
}

fn main() -> ExitCode {
    let widths = widths();
    let precheck = deps_precheck();
    let dca = Dca::new(DcaConfig::fast());
    let obs = Obs::disabled();
    let (mut executable, mut rejected, mut refused, mut prespawn) = (0u64, 0u64, 0u64, 0u64);
    let (mut hard_failures, mut steals, mut combines) = (0u64, 0u64, 0u64);
    for p in dca_suite::all_programs() {
        let m = p.module();
        let report = match dca.analyze(&m, &p.targs()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {}: {e}", p.name);
                return ExitCode::FAILURE;
            }
        };
        for r in report.commutative_loops() {
            let tag = r
                .tag
                .as_deref()
                .map(|t| format!(" @{t}"))
                .unwrap_or_default();
            let name = format!("{} {}{tag}", p.name, r.lref);
            // Sweep the widths; collect per-width status and the oracle
            // fingerprint each run reports (validated runs carry it in
            // the outcome, diverging runs in the error).
            let mut statuses: Vec<String> = Vec::new();
            let mut oracle_fps: Vec<u128> = Vec::new();
            let mut diverged = 0usize;
            let mut structural: Option<String> = None;
            let mut not_decomposable: Option<String> = None;
            let mut hard: Option<String> = None;
            let mut trips = 0usize;
            for &w in &widths {
                let cfg = ExecConfig {
                    threads: w,
                    deps_precheck: precheck,
                    ..ExecConfig::from_dca(&DcaConfig::fast())
                };
                match execute_loop(&m, &p.targs(), r.lref, &cfg, &obs) {
                    Ok(out) => {
                        trips = out.trips;
                        steals += out.steals;
                        combines += out.combine_steps;
                        if let Some(fp) = out.oracle_fingerprint {
                            oracle_fps.push(fp);
                        }
                        statuses.push(format!("w{w}:ok"));
                    }
                    Err(ExecError::Diverged { expected, .. }) => {
                        diverged += 1;
                        oracle_fps.push(expected);
                        statuses.push(format!("w{w}:rejected"));
                    }
                    Err(
                        e @ (ExecError::Unresolved(_)
                        | ExecError::OrderSensitive(_)
                        | ExecError::Unsupported(_)),
                    ) => {
                        structural = Some(e.to_string());
                        break;
                    }
                    // The footprint pre-check is a pure function of the
                    // golden recording, so the verdict (and its witness)
                    // is identical at every width — no need to finish
                    // the sweep.
                    Err(e @ ExecError::NotDecomposable { .. }) => {
                        not_decomposable = Some(e.to_string());
                        break;
                    }
                    Err(e) => {
                        hard = Some(e.to_string());
                        break;
                    }
                }
            }
            if let Some(e) = hard {
                hard_failures += 1;
                println!("{name}: FAILED: {e}");
                continue;
            }
            if let Some(e) = structural {
                refused += 1;
                println!("{name}: refused: {e}");
                continue;
            }
            if let Some(e) = not_decomposable {
                prespawn += 1;
                println!("{name}: refused pre-spawn: {e}");
                continue;
            }
            // Oracle fingerprints must agree across widths.
            if oracle_fps.windows(2).any(|p| p[0] != p[1]) {
                hard_failures += 1;
                println!("{name}: FAILED: oracle fingerprint varies with width: {oracle_fps:x?}");
                continue;
            }
            let fp = oracle_fps.first().copied().unwrap_or_default();
            if diverged > 0 {
                rejected += 1;
                println!(
                    "{name}: not parallel-executable ({}) trips={trips} oracle_fp={fp:032x}",
                    statuses.join(",")
                );
            } else {
                executable += 1;
                println!("{name}: validated trips={trips} oracle_fp={fp:032x}");
            }
        }
    }
    println!(
        "exec-stats: widths={widths:?} executable={executable} \
         rejected={rejected} refused={refused} prespawn={prespawn} failed={hard_failures}"
    );
    eprintln!("exec-accounting: steals={steals} combines={combines}");
    if hard_failures > 0 {
        eprintln!("error: {hard_failures} loop(s) trapped, stalled or broke oracle stability");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
