//! Prints per-benchmark detection counts on the fast workloads, used to
//! refresh the golden values in `tests/golden_counts.rs` after intended
//! suite changes.
fn main() {
    for p in dca_suite::all_programs() {
        let (_m, r) = dca_bench::detect_all(p, true);
        println!(
            "(\"{}\", {}, {}, {}, {}, {}, {}, {}),",
            p.name,
            r.total,
            r.depprof.parallel_count(),
            r.discopop.parallel_count(),
            r.idioms.parallel_count(),
            r.polly.parallel_count(),
            r.icc.parallel_count(),
            r.dca.parallel_count(),
        );
    }
}
