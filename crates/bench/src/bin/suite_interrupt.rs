//! Analyzes every suite program on its test workload and prints one
//! stable line per loop verdict, plus a trailing aggregate
//! `journal-stats:` line when a run journal is configured.
//!
//! CI's `interrupt` job runs this three times: once fault-free for an
//! oracle, once with a `DCA_FAULT=cancel@…` plan killing the run
//! mid-verification against a `DCA_JOURNAL`, and once more against the
//! same journal with the fault cleared. It fails when the resumed
//! verdict lines differ from the oracle, when the resume serves nothing
//! from the journal, or when a `*.tmp` rotation file is left behind —
//! the executable end-to-end proof that a killed run resumes exactly
//! where it stopped.
//!
//! The verdict lines deliberately include the full verdict payload
//! (violation details, trip counts, permutation counts, replay steps)
//! so a journal-served verdict that drifted in *any* field breaks the
//! diff. Provenance fields expected to differ between the interrupted
//! and resumed runs (`resumed`, wall time) are deliberately absent.

use dca_core::{Dca, DcaConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let dca = Dca::new(DcaConfig::fast());
    // resumed, recorded, quarantined, dropped, faults
    let mut totals = (0u64, 0u64, 0u64, 0u64, 0u64);
    let mut bypassed = 0u64;
    let mut saw_stats = false;
    for p in dca_suite::all_programs() {
        let m = p.module();
        let report = match dca.analyze(&m, &p.targs()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {}: {e}", p.name);
                return ExitCode::FAILURE;
            }
        };
        for r in report.iter() {
            let tag = r
                .tag
                .as_deref()
                .map(|t| format!(" @{t}"))
                .unwrap_or_default();
            println!(
                "{} {}{tag}: {} trips={} perms={} steps={}",
                p.name, r.lref, r.verdict, r.trips, r.permutations_tested, r.replay_steps
            );
        }
        if let Some(s) = &report.journal {
            saw_stats = true;
            totals.0 += s.resumed;
            totals.1 += s.recorded;
            totals.2 = totals.2.max(s.quarantined);
            totals.3 += s.dropped;
            totals.4 += s.faults;
            bypassed += u64::from(s.bypassed);
        }
    }
    if saw_stats {
        let (resumed, recorded, quarantined, dropped, faults) = totals;
        println!(
            "journal-stats: resumed={resumed} recorded={recorded} \
             quarantined={quarantined} dropped={dropped} faults={faults} bypassed={bypassed}"
        );
    } else {
        println!("journal-stats: disabled (set DCA_JOURNAL)");
    }
    ExitCode::SUCCESS
}
