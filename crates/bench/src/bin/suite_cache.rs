//! Analyzes every suite program on its test workload and prints one
//! stable line per loop verdict, plus a trailing aggregate
//! `cache-stats:` line when a verdict cache is configured.
//!
//! CI's `cache` job runs this twice against one `DCA_CACHE` file and
//! fails when the verdict lines differ between runs or the second run
//! serves zero hits — the executable end-to-end proof that warm
//! verdicts are indistinguishable from fresh ones.
//!
//! The verdict lines deliberately include the full verdict payload
//! (violation details, trip counts, permutation counts, replay steps)
//! so a cached verdict that drifted in *any* field breaks the diff, not
//! just one whose headline class changed. Provenance fields that are
//! expected to differ between cold and warm runs (`cached`, wall time)
//! are deliberately absent.

use dca_core::{Dca, DcaConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let dca = Dca::new(DcaConfig::fast());
    let mut totals = (0u64, 0u64, 0u64, 0u64); // hits, misses, stores, faults
    let mut bypassed = 0u64;
    let mut saw_stats = false;
    for p in dca_suite::all_programs() {
        let m = p.module();
        let report = match dca.analyze(&m, &p.targs()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {}: {e}", p.name);
                return ExitCode::FAILURE;
            }
        };
        for r in report.iter() {
            let tag = r
                .tag
                .as_deref()
                .map(|t| format!(" @{t}"))
                .unwrap_or_default();
            println!(
                "{} {}{tag}: {} trips={} perms={} steps={}",
                p.name, r.lref, r.verdict, r.trips, r.permutations_tested, r.replay_steps
            );
        }
        if let Some(s) = &report.cache {
            saw_stats = true;
            totals.0 += s.hits;
            totals.1 += s.misses;
            totals.2 += s.stores;
            totals.3 += s.faults;
            bypassed += u64::from(s.bypassed);
        }
    }
    if saw_stats {
        let (hits, misses, stores, faults) = totals;
        let consults = hits + misses;
        let rate = if consults > 0 {
            100.0 * hits as f64 / consults as f64
        } else {
            0.0
        };
        println!(
            "cache-stats: hits={hits} misses={misses} stores={stores} \
             faults={faults} bypassed={bypassed} hit_rate={rate:.1}%"
        );
    } else {
        println!("cache-stats: disabled (set DCA_CACHE)");
    }
    ExitCode::SUCCESS
}
