//! Regenerates Fig. 5: overall speedup achieved by DCA's simple
//! parallelization for the PLDS loops, on the simulated 72-core host.
//! The baselines detect none of these loops, so their bars are 1.0 by
//! construction. Run with `--fast` for the small test workloads.

use dca_ir::LoopRef;
use std::collections::BTreeSet;

fn main() {
    let fast = dca_bench::fast_mode();
    println!("Fig. 5: DCA parallelization speedup for PLDS loops (simulated 72 cores)");
    println!("{:<12} {:>9}", "Bmk", "Speedup");
    for name in [
        "treeadd",
        "perimeter",
        "water",
        "ks",
        "spmatmat",
        "bfs",
        "ising",
    ] {
        let p = dca_suite::by_name(name).expect("suite program");
        let (module, r) = dca_bench::detect_all(p, fast);
        let detected: BTreeSet<LoopRef> = r.dca.parallel_loops().collect();
        let selection = dca_bench::profitable_selection(p, &module, &detected);
        let s = dca_bench::speedup(p, &module, &selection, fast);
        println!("{name:<12} {s:>9.2}");
    }
}
