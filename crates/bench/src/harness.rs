//! A small, dependency-free micro-benchmark harness.
//!
//! The build environment is offline, so the workspace carries its own
//! harness instead of `criterion`. The API is a deliberate subset of
//! criterion's: each bench binary builds a [`Harness`], registers closures
//! with [`Harness::bench_function`], and gets per-benchmark timing
//! statistics on stdout. Each benchmark is calibrated to a target sample
//! duration, then measured over `sample_size` samples; the median is the
//! headline number (robust against scheduler noise on shared machines).
//!
//! Benches run with `cargo bench` (all of them) or
//! `cargo bench --bench <name> -- <filter>` (substring filter). Passing
//! `--quick` reduces the sample count for smoke-testing, and
//! `--json <path>` additionally writes the results as a machine-readable
//! report (see [`crate::report`]) — the input of the CI benchmark gate.

use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Target wall time for one calibrated sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

/// Hands the measured closure to a benchmark body, criterion-style.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back invocations of `f`.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// One benchmark's aggregated timing.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Benchmark name.
    pub name: String,
    /// Median time per iteration.
    pub median: Duration,
    /// Fastest sample's time per iteration.
    pub min: Duration,
    /// Slowest sample's time per iteration.
    pub max: Duration,
    /// Iterations per sample after calibration.
    pub iters: u64,
}

/// The benchmark registry and runner.
pub struct Harness {
    sample_size: usize,
    filter: Option<String>,
    json: Option<PathBuf>,
    bench_name: String,
    results: Vec<Sample>,
}

impl Default for Harness {
    fn default() -> Self {
        Harness::new()
    }
}

impl Harness {
    /// A harness configured from the command line: the first free argument
    /// is a substring filter, `--quick` drops the sample count to 3, and
    /// `--json <path>` writes a machine-readable report on
    /// [`Harness::finish`].
    #[must_use]
    pub fn new() -> Self {
        let mut args = std::env::args();
        // The binary path names the bench in the JSON report
        // (`.../deps/stages-<hash>` -> `stages`).
        let bench_name = args
            .next()
            .map(|p| {
                let stem = PathBuf::from(p)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_default();
                stem.split_once('-')
                    .map_or(stem.clone(), |(name, _)| name.to_string())
            })
            .unwrap_or_else(|| "bench".to_string());
        let mut quick = false;
        let mut json = None;
        let mut filter = None;
        let mut rest = args.peekable();
        while let Some(a) = rest.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--json" => json = rest.next().map(PathBuf::from),
                // Cargo's bench runner passes `--bench`; ignore other
                // flags generally.
                f if f.starts_with('-') => {}
                free => {
                    if filter.is_none() {
                        filter = Some(free.to_string());
                    }
                }
            }
        }
        Harness {
            sample_size: if quick { 3 } else { 10 },
            filter,
            json,
            bench_name,
            results: Vec::new(),
        }
    }

    /// Overrides the number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function(&mut self, name: &str, mut body: impl FnMut(&mut Bencher)) {
        if let Some(f) = &self.filter {
            if !name.contains(f.as_str()) {
                return;
            }
        }
        // Calibrate: time one iteration, then scale so a sample lasts
        // roughly TARGET_SAMPLE.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        body(&mut b);
        let once = b.elapsed.max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            body(&mut b);
            per_iter.push(b.elapsed / u32::try_from(iters).unwrap_or(u32::MAX));
        }
        per_iter.sort_unstable();
        let sample = Sample {
            name: name.to_string(),
            median: per_iter[per_iter.len() / 2],
            min: per_iter[0],
            max: per_iter[per_iter.len() - 1],
            iters,
        };
        println!(
            "{:<44} {:>12} (min {:>12}, max {:>12}, {} iters/sample)",
            sample.name,
            fmt_duration(sample.median),
            fmt_duration(sample.min),
            fmt_duration(sample.max),
            sample.iters
        );
        self.results.push(sample);
    }

    /// All samples collected so far.
    #[must_use]
    pub fn results(&self) -> &[Sample] {
        &self.results
    }

    /// Prints the closing summary line and, when `--json <path>` was
    /// passed, writes the machine-readable report there.
    ///
    /// # Panics
    ///
    /// Panics when the report file cannot be written — a CI bench run
    /// that silently loses its report would pass the gate vacuously.
    pub fn finish(&self) {
        println!("{} benchmarks run", self.results.len());
        if let Some(path) = &self.json {
            let report = crate::report::BenchReport::from_samples(&self.bench_name, &self.results);
            std::fs::write(path, report.to_json())
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
            println!("wrote {} ({} entries)", path.display(), self.results.len());
        }
    }
}

/// Renders a duration with a unit that keeps 3-4 significant digits.
#[must_use]
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_duration_picks_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(17)), "17 ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(4)), "4.00 s");
    }

    #[test]
    fn bencher_measures_and_harness_collects() {
        let mut h = Harness {
            sample_size: 2,
            filter: None,
            json: None,
            bench_name: "test".into(),
            results: Vec::new(),
        };
        let mut runs = 0u64;
        h.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert_eq!(h.results().len(), 1);
        assert!(runs > 0);
        assert!(h.results()[0].median >= Duration::ZERO);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut h = Harness {
            sample_size: 1,
            filter: Some("wanted".into()),
            json: None,
            bench_name: "test".into(),
            results: Vec::new(),
        };
        h.bench_function("other", |b| b.iter(|| 1));
        assert!(h.results().is_empty());
        h.bench_function("wanted/case", |b| b.iter(|| 1));
        assert_eq!(h.results().len(), 1);
    }
}
