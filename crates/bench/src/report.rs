//! Machine-readable benchmark reports and regression diffing.
//!
//! `dca-bench` binaries emit a stable JSON report with `--json <path>`
//! (schema `dca-bench/1`, documented in DESIGN.md §11), and the
//! `benchdiff` binary compares two reports, exiting non-zero when any
//! tracked metric regresses beyond a threshold — the CI benchmark gate.
//! The build environment is offline, so both the writer and the (small,
//! schema-specific) parser are hand-rolled; [`parse_json`] handles just
//! the JSON subset the reports use.

use crate::harness::Sample;
use dca_obs::json_escape;
pub use dca_obs::{parse_json, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Report schema identifier; bump when the shape changes.
pub const SCHEMA: &str = "dca-bench/1";

/// One benchmark's numbers in a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchEntry {
    /// Benchmark name (e.g. `parallel/loops_x8/threads_2`).
    pub name: String,
    /// Median time per iteration, nanoseconds — the tracked metric.
    pub median_ns: u64,
    /// Fastest sample, nanoseconds.
    pub min_ns: u64,
    /// Slowest sample, nanoseconds.
    pub max_ns: u64,
    /// Iterations per sample after calibration.
    pub iters: u64,
}

/// A full benchmark report: what one bench binary measured, or (for a
/// committed baseline) the merge of several.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BenchReport {
    /// Which bench binary produced it (`merged` for baselines).
    pub bench: String,
    /// Per-benchmark entries, in execution order.
    pub entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// Builds a report from a harness run.
    #[must_use]
    pub fn from_samples(bench: &str, samples: &[Sample]) -> Self {
        BenchReport {
            bench: bench.to_string(),
            entries: samples
                .iter()
                .map(|s| BenchEntry {
                    name: s.name.clone(),
                    median_ns: s.median.as_nanos() as u64,
                    min_ns: s.min.as_nanos() as u64,
                    max_ns: s.max.as_nanos() as u64,
                    iters: s.iters,
                })
                .collect(),
        }
    }

    /// Renders the report as pretty-printed JSON (schema `dca-bench/1`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"schema\": \"{SCHEMA}\",");
        let _ = writeln!(s, "  \"bench\": \"{}\",", json_escape(&self.bench));
        let _ = writeln!(s, "  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{\"name\": \"{}\", \"median_ns\": {}, \"min_ns\": {}, \
                 \"max_ns\": {}, \"iters\": {}}}{comma}",
                json_escape(&e.name),
                e.median_ns,
                e.min_ns,
                e.max_ns,
                e.iters
            );
        }
        let _ = writeln!(s, "  ]");
        s.push_str("}\n");
        s
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Returns a message when the text is not valid JSON, the schema tag
    /// is unknown, or a required field is missing or mistyped.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = parse_json(text)?;
        let obj = v.as_object().ok_or("report root must be an object")?;
        let schema = obj
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing \"schema\"")?;
        if schema != SCHEMA {
            return Err(format!(
                "unsupported schema {schema:?}, expected {SCHEMA:?}"
            ));
        }
        let bench = obj
            .get("bench")
            .and_then(Json::as_str)
            .ok_or("missing \"bench\"")?
            .to_string();
        let raw = obj
            .get("entries")
            .and_then(Json::as_array)
            .ok_or("missing \"entries\"")?;
        let mut entries = Vec::with_capacity(raw.len());
        for e in raw {
            let o = e.as_object().ok_or("entry must be an object")?;
            let field = |k: &str| -> Result<u64, String> {
                o.get(k)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("entry missing numeric \"{k}\""))
            };
            entries.push(BenchEntry {
                name: o
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("entry missing \"name\"")?
                    .to_string(),
                median_ns: field("median_ns")?,
                min_ns: field("min_ns")?,
                max_ns: field("max_ns")?,
                iters: field("iters")?,
            });
        }
        Ok(BenchReport { bench, entries })
    }

    /// Merges another report in: entries with the same name are replaced,
    /// new ones appended. Used to build the committed multi-binary
    /// baseline.
    pub fn merge(&mut self, other: &BenchReport) {
        self.bench = "merged".to_string();
        for e in &other.entries {
            if let Some(mine) = self.entries.iter_mut().find(|m| m.name == e.name) {
                *mine = e.clone();
            } else {
                self.entries.push(e.clone());
            }
        }
    }

    /// Multiplies every median by `factor` — used by CI to self-test the
    /// regression gate with an injected slowdown.
    pub fn inject_slowdown(&mut self, factor: f64) {
        for e in &mut self.entries {
            e.median_ns = (e.median_ns as f64 * factor) as u64;
            e.min_ns = (e.min_ns as f64 * factor) as u64;
            e.max_ns = (e.max_ns as f64 * factor) as u64;
        }
    }
}

/// How one metric moved between baseline and current.
#[derive(Debug, Clone, PartialEq)]
pub enum DiffStatus {
    /// Slower than baseline beyond the threshold.
    Regressed,
    /// Within the threshold either way.
    Ok,
    /// Only in the current report (informational).
    New,
    /// Only in the baseline (informational — a renamed or removed bench).
    Missing,
}

/// One line of a report comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffLine {
    /// Benchmark name.
    pub name: String,
    /// Baseline median, ns (0 for [`DiffStatus::New`]).
    pub base_ns: u64,
    /// Current median, ns (0 for [`DiffStatus::Missing`]).
    pub cur_ns: u64,
    /// Relative change in percent (`+` is slower).
    pub delta_pct: f64,
    /// Classification under the threshold.
    pub status: DiffStatus,
}

/// The outcome of comparing two reports.
#[derive(Debug, Clone, Default)]
pub struct BenchDiff {
    /// Per-benchmark comparisons, baseline order then new entries.
    pub lines: Vec<DiffLine>,
}

impl BenchDiff {
    /// Number of regressed metrics.
    #[must_use]
    pub fn regressions(&self) -> usize {
        self.lines
            .iter()
            .filter(|l| l.status == DiffStatus::Regressed)
            .count()
    }

    /// A human-readable table of the comparison.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        for l in &self.lines {
            let tag = match l.status {
                DiffStatus::Regressed => "REGRESSED",
                DiffStatus::Ok => "ok",
                DiffStatus::New => "new",
                DiffStatus::Missing => "missing",
            };
            let _ = writeln!(
                s,
                "{:<44} {:>12} -> {:>12}  {:>+8.1}%  {tag}",
                l.name, l.base_ns, l.cur_ns, l.delta_pct
            );
        }
        let _ = writeln!(
            s,
            "{} metrics compared, {} regressed",
            self.lines.len(),
            self.regressions()
        );
        s
    }

    /// Renders the diff as JSON (schema `dca-benchdiff/1`) for downstream
    /// tooling. Written through the guarded [`Json`] writer, so a
    /// non-finite `delta_pct` degrades to `null` instead of corrupting
    /// the document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let lines = self
            .lines
            .iter()
            .map(|l| {
                let status = match l.status {
                    DiffStatus::Regressed => "regressed",
                    DiffStatus::Ok => "ok",
                    DiffStatus::New => "new",
                    DiffStatus::Missing => "missing",
                };
                let mut o = BTreeMap::new();
                o.insert("name".to_string(), Json::Str(l.name.clone()));
                o.insert("base_ns".to_string(), Json::Num(l.base_ns as f64));
                o.insert("cur_ns".to_string(), Json::Num(l.cur_ns as f64));
                o.insert("delta_pct".to_string(), Json::Num(l.delta_pct));
                o.insert("status".to_string(), Json::Str(status.to_string()));
                Json::Obj(o)
            })
            .collect();
        let mut root = BTreeMap::new();
        root.insert(
            "schema".to_string(),
            Json::Str("dca-benchdiff/1".to_string()),
        );
        root.insert(
            "regressions".to_string(),
            Json::Num(self.regressions() as f64),
        );
        root.insert("lines".to_string(), Json::Arr(lines));
        format!("{}\n", Json::Obj(root))
    }
}

/// Compares `current` against `baseline`: a metric regresses when its
/// median is more than `threshold_pct` percent slower than the baseline
/// median. Entries present on only one side are reported informationally
/// and never fail the gate (so adding or renaming a bench doesn't need a
/// lockstep baseline update).
#[must_use]
pub fn diff_reports(
    baseline: &BenchReport,
    current: &BenchReport,
    threshold_pct: f64,
) -> BenchDiff {
    let mut lines = Vec::new();
    for b in &baseline.entries {
        match current.entries.iter().find(|c| c.name == b.name) {
            Some(c) => {
                let base = b.median_ns.max(1) as f64;
                let delta_pct = (c.median_ns as f64 - base) / base * 100.0;
                let status = if delta_pct > threshold_pct {
                    DiffStatus::Regressed
                } else {
                    DiffStatus::Ok
                };
                lines.push(DiffLine {
                    name: b.name.clone(),
                    base_ns: b.median_ns,
                    cur_ns: c.median_ns,
                    delta_pct,
                    status,
                });
            }
            None => lines.push(DiffLine {
                name: b.name.clone(),
                base_ns: b.median_ns,
                cur_ns: 0,
                delta_pct: 0.0,
                status: DiffStatus::Missing,
            }),
        }
    }
    for c in &current.entries {
        if !baseline.entries.iter().any(|b| b.name == c.name) {
            lines.push(DiffLine {
                name: c.name.clone(),
                base_ns: 0,
                cur_ns: c.median_ns,
                delta_pct: 0.0,
                status: DiffStatus::New,
            });
        }
    }
    BenchDiff { lines }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample(name: &str, median_ns: u64) -> Sample {
        Sample {
            name: name.to_string(),
            median: Duration::from_nanos(median_ns),
            min: Duration::from_nanos(median_ns / 2),
            max: Duration::from_nanos(median_ns * 2),
            iters: 100,
        }
    }

    #[test]
    fn report_json_round_trips() {
        let report = BenchReport::from_samples(
            "stages",
            &[
                sample("static/liveness", 12_345),
                sample("dynamic/replay \"x\"", 99),
            ],
        );
        let text = report.to_json();
        assert!(text.contains("\"schema\": \"dca-bench/1\""));
        let back = BenchReport::from_json(&text).expect("parse");
        assert_eq!(back, report);
    }

    #[test]
    fn parse_rejects_garbage_and_wrong_schema() {
        assert!(BenchReport::from_json("not json").is_err());
        assert!(BenchReport::from_json(
            "{\"schema\": \"other/9\", \"bench\": \"x\", \"entries\": []}"
        )
        .is_err());
        assert!(BenchReport::from_json("{\"bench\": \"x\", \"entries\": []}").is_err());
    }

    #[test]
    fn diff_flags_regressions_beyond_threshold_only() {
        let base = BenchReport::from_samples("b", &[sample("a", 1_000), sample("b", 1_000)]);
        let mut cur = base.clone();
        cur.entries[0].median_ns = 1_050; // +5%
        cur.entries[1].median_ns = 2_000; // +100%
        let d = diff_reports(&base, &cur, 10.0);
        assert_eq!(d.regressions(), 1);
        assert_eq!(d.lines[0].status, DiffStatus::Ok);
        assert_eq!(d.lines[1].status, DiffStatus::Regressed);
        assert!((d.lines[1].delta_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn injected_2x_slowdown_trips_a_10pct_gate() {
        // The acceptance criterion for the CI gate: same report passes at
        // threshold 10, a 2x-slowed copy fails.
        let base = BenchReport::from_samples("b", &[sample("a", 10_000), sample("b", 500)]);
        assert_eq!(diff_reports(&base, &base, 10.0).regressions(), 0);
        let mut slowed = base.clone();
        slowed.inject_slowdown(2.0);
        let d = diff_reports(&base, &slowed, 10.0);
        assert_eq!(d.regressions(), 2, "every metric doubled");
        assert!(d.render().contains("REGRESSED"));
    }

    #[test]
    fn new_and_missing_entries_never_fail_the_gate() {
        let base = BenchReport::from_samples("b", &[sample("kept", 100), sample("gone", 100)]);
        let cur = BenchReport::from_samples("b", &[sample("kept", 100), sample("added", 100)]);
        let d = diff_reports(&base, &cur, 10.0);
        assert_eq!(d.regressions(), 0);
        assert!(d.lines.iter().any(|l| l.status == DiffStatus::Missing));
        assert!(d.lines.iter().any(|l| l.status == DiffStatus::New));
    }

    #[test]
    fn merge_replaces_same_name_and_appends_new() {
        let mut a = BenchReport::from_samples("stages", &[sample("x", 100)]);
        let b = BenchReport::from_samples("parallel_engine", &[sample("x", 200), sample("y", 300)]);
        a.merge(&b);
        assert_eq!(a.bench, "merged");
        assert_eq!(a.entries.len(), 2);
        assert_eq!(a.entries[0].median_ns, 200);
    }

    #[test]
    fn diff_json_survives_non_finite_delta() {
        let mut d = diff_reports(
            &BenchReport::from_samples("b", &[sample("a", 1_000)]),
            &BenchReport::from_samples("b", &[sample("a", 1_200)]),
            10.0,
        );
        // Force the failure mode the guard exists for: a delta computed
        // over a pathological baseline.
        d.lines[0].delta_pct = f64::INFINITY;
        let text = d.to_json();
        let v = parse_json(&text).expect("diff JSON must stay valid");
        let obj = v.as_object().expect("object");
        assert_eq!(obj["schema"].as_str(), Some("dca-benchdiff/1"));
        assert_eq!(obj["regressions"].as_u64(), Some(1));
        let line = obj["lines"].as_array().expect("lines")[0]
            .as_object()
            .expect("line");
        assert_eq!(line["delta_pct"], Json::Null);
        assert_eq!(line["status"].as_str(), Some("regressed"));
        assert_eq!(line["base_ns"].as_u64(), Some(1_000));
    }
}
