//! Shared harness code for regenerating every table and figure of the
//! paper's evaluation (§V). Each table/figure has a dedicated binary (see
//! `src/bin/`); this library holds the detection/simulation plumbing they
//! share. DESIGN.md maps each experiment to its binary.

#![warn(missing_docs)]

use dca_baselines::{
    DependenceProfiling, DetectionReport, Detector, DiscoPopStyle, IccStyle, IdiomsStyle,
    PollyStyle,
};
use dca_core::DcaConfig;
use dca_ir::{LoopRef, Module};
use dca_parallel::SimConfig;
use dca_suite::SuiteProgram;
use std::collections::BTreeSet;
use std::time::Duration;

pub mod harness;
pub mod report;

/// All six per-technique reports for one program.
#[derive(Debug, Clone)]
pub struct AllReports {
    /// DCA's structured per-loop verdicts (the source of the `dca`
    /// detection report; used for precision accounting in Table IV).
    pub dca_verdicts: dca_core::DcaReport,
    /// Dependence Profiling (dynamic baseline).
    pub depprof: DetectionReport,
    /// DiscoPoP-style (dynamic baseline).
    pub discopop: DetectionReport,
    /// Idioms (static baseline).
    pub idioms: DetectionReport,
    /// Polly-style (static baseline).
    pub polly: DetectionReport,
    /// ICC-style (static baseline).
    pub icc: DetectionReport,
    /// DCA (this paper).
    pub dca: DetectionReport,
    /// Total loops in the module.
    pub total: usize,
}

impl AllReports {
    /// The paper's "Combined Static": union of the three static tools.
    pub fn combined_static(&self) -> BTreeSet<LoopRef> {
        let mut s: BTreeSet<LoopRef> = self.idioms.parallel_loops().collect();
        s.extend(self.polly.parallel_loops());
        s.extend(self.icc.parallel_loops());
        s
    }
}

/// Runs every detector on `p` (dynamic ones use the given workload).
pub fn detect_all(p: &SuiteProgram, fast: bool) -> (Module, AllReports) {
    let module = p.module();
    let args = if fast { p.targs() } else { p.args() };
    let total = dca_ir::all_loops(&module).len();
    // One traced execution serves both dynamic baselines.
    let trace = dca_baselines::shared_trace(&module, &args);
    let dca_verdicts = dca_core::Dca::new(DcaConfig::default())
        .analyze(&module, &args)
        .expect("suite programs have a main function");
    let mut dca = DetectionReport::default();
    for r in dca_verdicts.iter() {
        dca.set(r.lref, r.verdict.is_commutative(), r.verdict.to_string());
    }
    let reports = AllReports {
        depprof: DependenceProfiling.detect_with(&module, &trace),
        discopop: DiscoPopStyle.detect_with(&module, &trace),
        idioms: IdiomsStyle.detect(&module, &args),
        polly: PollyStyle.detect(&module, &args),
        icc: IccStyle.detect(&module, &args),
        dca,
        dca_verdicts,
        total,
    };
    (module, reports)
}

/// Resolves the expert tags of `p` to loop references in `module`.
pub fn tags_to_loops(p: &SuiteProgram, module: &Module, tags: &[&str]) -> BTreeSet<LoopRef> {
    tags.iter()
        .filter_map(|t| p.loop_by_tag(module, t))
        .collect()
}

/// The profitable selection for a technique: the loops it detected,
/// intersected with the expert profitability tags (paper §V-C2: DCA and
/// Idioms use the expert profitability analysis).
pub fn profitable_selection(
    p: &SuiteProgram,
    module: &Module,
    detected: &BTreeSet<LoopRef>,
) -> BTreeSet<LoopRef> {
    let profitable = tags_to_loops(p, module, p.expert.profitable_tags);
    detected.intersection(&profitable).copied().collect()
}

/// Whole-program speedup of parallelizing `selection` on the paper's
/// simulated 72-core host. Returns 1.0 on measurement failure.
pub fn speedup(
    p: &SuiteProgram,
    module: &Module,
    selection: &BTreeSet<LoopRef>,
    fast: bool,
) -> f64 {
    let args = if fast { p.targs() } else { p.args() };
    dca_parallel::speedup_for_selection(module, &args, selection, &SimConfig::paper_host())
        .unwrap_or(1.0)
}

/// Loop-only and full expert speedups (Fig. 7).
pub fn expert_speedups(p: &SuiteProgram, module: &Module, fast: bool) -> (f64, f64) {
    let args = if fast { p.targs() } else { p.args() };
    let selection = tags_to_loops(p, module, p.expert.profitable_tags);
    dca_parallel::speedup_with_extra(
        module,
        &args,
        &selection,
        &SimConfig::paper_host(),
        p.expert.extra_parallel_fraction,
    )
    .unwrap_or((1.0, 1.0))
}

/// Fraction (in %) of sequential execution covered by `selection`
/// (outermost loops only, inclusive costs).
pub fn coverage_pct(
    p: &SuiteProgram,
    module: &Module,
    selection: &BTreeSet<LoopRef>,
    fast: bool,
) -> f64 {
    let args = if fast { p.targs() } else { p.args() };
    match dca_parallel::covered_fraction(module, &args, selection) {
        Ok(f) => 100.0 * f,
        Err(_) => 0.0,
    }
}

/// Geometric mean of positive values.
pub fn gmean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let s: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (s / values.len() as f64).exp()
}

/// True when `--fast` was passed (use the small test workloads).
pub fn fast_mode() -> bool {
    std::env::args().any(|a| a == "--fast")
}

/// Sequential-vs-parallel wall time of the DCA engine itself on one
/// program: runs `analyze` with one worker thread and with `threads`
/// workers and reports `(sequential, parallel, speedup)`. The verdicts of
/// the two runs are asserted identical — the engine's determinism
/// guarantee — so the numbers always compare equal work.
pub fn engine_speedup(
    module: &Module,
    args: &[dca_interp::Value],
    config: &DcaConfig,
    threads: usize,
) -> (Duration, Duration, f64) {
    let seq_cfg = DcaConfig {
        threads: 1,
        ..config.clone()
    };
    let par_cfg = DcaConfig {
        threads,
        ..config.clone()
    };
    let seq = dca_core::Dca::new(seq_cfg)
        .analyze(module, args)
        .expect("sequential analysis");
    let par = dca_core::Dca::new(par_cfg)
        .analyze(module, args)
        .expect("parallel analysis");
    assert_eq!(seq.len(), par.len());
    for (s, p) in seq.iter().zip(par.iter()) {
        assert_eq!(s, p, "parallel engine must match sequential verdicts");
    }
    let ratio = seq.wall.as_secs_f64() / par.wall.as_secs_f64().max(1e-12);
    (seq.wall, par.wall, ratio)
}

/// Prints the engine's sequential-vs-parallel wall time over the whole
/// NPB suite — the footer every table/figure binary appends so each
/// regenerated experiment also documents how fast its analyses ran.
pub fn print_engine_speedup_footer(fast: bool) {
    let threads = dca_core::effective_threads(0);
    if threads <= 1 {
        println!("\n[engine] 1 CPU available: verification ran sequentially");
        return;
    }
    let (mut seq_total, mut par_total) = (Duration::ZERO, Duration::ZERO);
    for p in dca_suite::npb::programs() {
        let module = p.module();
        let args = if fast { p.targs() } else { p.args() };
        let (seq, par, _) = engine_speedup(&module, &args, &DcaConfig::default(), threads);
        seq_total += seq;
        par_total += par;
    }
    println!(
        "\n[engine] verification wall time over NPB: {:.3}s sequential, {:.3}s on {} threads \
         ({:.2}x speedup)",
        seq_total.as_secs_f64(),
        par_total.as_secs_f64(),
        threads,
        seq_total.as_secs_f64() / par_total.as_secs_f64().max(1e-12)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_basics() {
        assert!((gmean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(gmean(&[]), 1.0);
    }

    #[test]
    fn detect_all_runs_on_a_small_program() {
        let p = dca_suite::by_name("ep").expect("ep exists");
        let (_, reports) = detect_all(p, true);
        assert_eq!(reports.total, 9);
        assert!(reports.dca.parallel_count() >= reports.combined_static().len());
    }
}
