//! Execution hooks: the instrumentation surface of the interpreter.
//!
//! The paper's prototype inserts runtime calls into the compiled program
//! (iterator linearization, permutation, verification — Fig. 4). Our
//! interpreter exposes the same capability as a trait: a [`Hooks`]
//! implementation observes every block entry, memory access, call and
//! terminator, and may *intervene* by skipping instructions, rewriting
//! variables, or redirecting control flow. DCA's dynamic stage, the
//! dependence profilers and the coverage profiler are all `Hooks`
//! implementations.

use crate::value::{Addr, Value};
use dca_ir::{BlockId, FuncId};

/// Context passed to every hook: where execution currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Site {
    /// The executing function.
    pub func: FuncId,
    /// Call-stack depth (0 = the entry function's frame).
    pub depth: usize,
    /// Instruction steps executed so far.
    pub steps: u64,
}

/// What to do with the instruction about to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstAction {
    /// Execute normally.
    Run,
    /// Skip it entirely (no effects, destination unchanged).
    Skip,
}

/// What to do at a terminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TermAction {
    /// Take the machine-computed successor (or return).
    Default,
    /// Jump to this block instead (cancels a `Return` as well).
    Goto(BlockId),
}

/// Observation and intervention points during execution.
///
/// All methods have no-op defaults; implement only what you need. The
/// `vars` slices expose the *current frame's* variables and may be
/// mutated — this is how DCA binds recorded iterator values during replay.
#[allow(unused_variables)]
pub trait Hooks {
    /// Control enters `block` (before its first instruction).
    fn on_block(&mut self, site: Site, block: BlockId, vars: &mut [Value]) {}

    /// About to execute instruction `idx` of `block`. Return
    /// [`InstAction::Skip`] to suppress it.
    fn before_inst(
        &mut self,
        site: Site,
        block: BlockId,
        idx: usize,
        vars: &mut [Value],
    ) -> InstAction {
        InstAction::Run
    }

    /// Instruction `idx` of `block` just executed.
    fn after_inst(&mut self, site: Site, block: BlockId, idx: usize, vars: &mut [Value]) {}

    /// About to leave `block`. `default_target` is the successor the machine
    /// chose (`None` for a `Return`). Return [`TermAction::Goto`] to
    /// redirect.
    fn on_term(
        &mut self,
        site: Site,
        block: BlockId,
        default_target: Option<BlockId>,
        vars: &mut [Value],
    ) -> TermAction {
        TermAction::Default
    }

    /// A memory cell was read.
    fn on_read(&mut self, site: Site, addr: Addr) {}

    /// A memory cell was written.
    fn on_write(&mut self, site: Site, addr: Addr) {}

    /// A memory cell is about to be overwritten: `old` is the value it
    /// holds, `new` the value being stored. Fired alongside
    /// [`Hooks::on_write`]; separate so observers that don't need values
    /// (the write journal arming, the replay controllers) pay nothing
    /// for them.
    fn on_store(&mut self, site: Site, addr: Addr, old: Value, new: Value) {}

    /// A call to `callee` is about to push a frame.
    fn on_call(&mut self, site: Site, callee: FuncId) {}

    /// The frame of `func` just returned (to depth `site.depth`).
    fn on_return(&mut self, site: Site, func: FuncId) {}
}

/// The trivial hook set: observe nothing, intervene nowhere.
///
/// Monomorphization makes running with `NoHooks` essentially free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoHooks;

impl Hooks for NoHooks {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_do_not_intervene() {
        let mut h = NoHooks;
        let site = Site {
            func: FuncId(0),
            depth: 0,
            steps: 0,
        };
        assert_eq!(h.before_inst(site, BlockId(0), 0, &mut []), InstAction::Run);
        assert_eq!(
            h.on_term(site, BlockId(0), None, &mut []),
            TermAction::Default
        );
    }
}
