//! IR interpreter with heap, snapshots, tracing and cost accounting.
//!
//! In the paper's prototype, instrumented native binaries run under a DCA
//! runtime library. Here the [`machine::Machine`] fills both roles: it
//! executes IR deterministically and exposes the instrumentation surface
//! ([`hooks::Hooks`]) plus snapshot/restore, which together implement
//! iterator recording, permuted replay and live-out verification without
//! recompiling the program.
//!
//! # Example
//!
//! ```
//! use dca_interp::{run_program, Value};
//!
//! let module = dca_ir::compile(
//!     "fn main(n: int) -> int {
//!          let s: int = 0;
//!          for (let i: int = 0; i < n; i = i + 1) { s = s + i; }
//!          return s;
//!      }",
//! ).map_err(|e| e.to_string())?;
//! let result = run_program(&module, &[Value::Int(10)]).map_err(|e| e.to_string())?;
//! assert_eq!(result.ret, Some(Value::Int(45)));
//! # Ok::<(), String>(())
//! ```

#![warn(missing_docs)]

pub mod hooks;
pub mod machine;
pub mod profile;
pub mod value;

pub use hooks::{Hooks, InstAction, NoHooks, Site, TermAction};
pub use machine::{
    JournalStats, Limits, Machine, Obj, OpCounts, Outcome, OutputItem, Position, Snapshot, Trap,
};
pub use profile::{LoopProfiler, LoopStats, ModuleProfile};
pub use value::{Addr, ObjId, Value};

use dca_ir::Module;

/// The observable result of one complete program execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramResult {
    /// `main`'s return value.
    pub ret: Option<Value>,
    /// Everything printed, in order.
    pub output: Vec<OutputItem>,
    /// Total instruction steps.
    pub steps: u64,
}

/// Runs `main(args)` of `module` to completion with no instrumentation.
///
/// # Errors
///
/// Returns the first [`Trap`] (null dereference, out-of-bounds, ...).
///
/// # Panics
///
/// Panics if the module has no `main` or the argument count mismatches.
pub fn run_program(module: &Module, args: &[Value]) -> Result<ProgramResult, Trap> {
    let mut machine = Machine::new(module);
    let main = module.main().expect("module has no `main` function");
    machine.push_call(main, args)?;
    match machine.run(&mut NoHooks, u64::MAX)? {
        Outcome::Finished(ret) => Ok(ProgramResult {
            ret,
            output: machine.output().to_vec(),
            steps: machine.steps(),
        }),
        Outcome::Paused => unreachable!("no step budget was set"),
    }
}

/// Runs `main(args)` while profiling loop costs; returns the program result
/// and the per-loop profile.
///
/// # Errors
///
/// Returns the first [`Trap`].
///
/// # Panics
///
/// Panics if the module has no `main` or the argument count mismatches.
pub fn run_profiled(
    module: &Module,
    args: &[Value],
) -> Result<(ProgramResult, ModuleProfile), Trap> {
    let mut machine = Machine::new(module);
    let main = module.main().expect("module has no `main` function");
    machine.push_call(main, args)?;
    let mut profiler = LoopProfiler::new(module);
    match machine.run(&mut profiler, u64::MAX)? {
        Outcome::Finished(ret) => {
            let result = ProgramResult {
                ret,
                output: machine.output().to_vec(),
                steps: machine.steps(),
            };
            Ok((result, profiler.finish(machine.steps())))
        }
        Outcome::Paused => unreachable!("no step budget was set"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_program_end_to_end() {
        let m = dca_ir::compile(
            "fn main() -> int { let s: int = 0; \
             for (let i: int = 1; i <= 4; i = i + 1) { s = s * 10 + i; } return s; }",
        )
        .expect("compile");
        let r = run_program(&m, &[]).expect("run");
        assert_eq!(r.ret, Some(Value::Int(1234)));
        assert!(r.steps > 0);
    }

    #[test]
    fn run_profiled_returns_both() {
        let m = dca_ir::compile(
            "fn main() { let s: int = 0; \
             @l: for (let i: int = 0; i < 32; i = i + 1) { s = s + i; } }",
        )
        .expect("compile");
        let (r, p) = run_profiled(&m, &[]).expect("run");
        assert_eq!(r.steps, p.total_steps);
        let (lref, _) = dca_ir::all_loops(&m)[0];
        assert!(p.coverage(lref) > 0.5);
    }
}
