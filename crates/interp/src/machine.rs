//! The IR interpreter.
//!
//! A [`Machine`] executes one program with an explicit frame stack, a
//! growable object heap, and an output stream. Execution is fully
//! deterministic and can be:
//!
//! * **snapshotted** and restored ([`Machine::snapshot`] /
//!   [`Machine::restore`]) — how DCA re-runs a loop invocation under
//!   permuted iteration orders from identical initial state,
//! * **observed and steered** through [`Hooks`] — how instrumentation
//!   (iterator recording, dependence profiling, replay control) attaches
//!   without touching program code,
//! * **metered** — every instruction and terminator costs one step, giving
//!   the per-iteration cost profiles the multicore simulator consumes.

use crate::hooks::{Hooks, InstAction, Site, TermAction};
use crate::value::{Addr, ObjId, Value};
use dca_ir::{
    BinOp, BlockId, FuncId, Inst, Intrinsic, MemBase, Module, Operand, PrintOp, Terminator, Ty,
    UnOp, VarId,
};
use std::fmt;

/// A heap object: a vector of value cells (struct fields or array
/// elements).
#[derive(Debug, Clone, PartialEq)]
pub struct Obj {
    /// The cells.
    pub cells: Vec<Value>,
}

/// One entry of the program's observable output stream.
#[derive(Debug, Clone, PartialEq)]
pub enum OutputItem {
    /// A literal label from a `print` statement.
    Label(String),
    /// A printed value.
    Value(Value),
}

impl fmt::Display for OutputItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OutputItem::Label(s) => write!(f, "{s}"),
            OutputItem::Value(v) => write!(f, "{v}"),
        }
    }
}

/// A runtime fault. Well-typed programs can still trap (null dereference,
/// out-of-bounds index, division by zero, runaway recursion or allocation);
/// ill-typed entry arguments surface as [`Trap::IllTyped`] or
/// [`Trap::ArityMismatch`] rather than aborting the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// Dereferenced a null pointer.
    NullDeref,
    /// Indexed outside an object.
    OutOfBounds {
        /// Object length in cells.
        len: usize,
        /// Attempted index.
        index: i64,
    },
    /// Integer division or remainder by zero.
    DivByZero,
    /// Call stack exceeded the configured limit.
    StackOverflow,
    /// Heap exceeded the configured cell limit.
    OutOfMemory,
    /// Stepped a machine with no live frames.
    NotRunning,
    /// A call was made with the wrong number of arguments.
    ArityMismatch {
        /// Parameters the callee declares.
        expected: usize,
        /// Arguments actually supplied.
        given: usize,
    },
    /// An operation received a value of the wrong kind. Only reachable
    /// when entry arguments bypass the checker (IR produced by `compile`
    /// is type-correct internally); the payload names the operation.
    IllTyped(&'static str),
    /// A synthetic fault injected by a test harness (never produced by
    /// program execution itself).
    Injected,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::NullDeref => write!(f, "null pointer dereference"),
            Trap::OutOfBounds { len, index } => {
                write!(f, "index {index} out of bounds for object of {len} cells")
            }
            Trap::DivByZero => write!(f, "division by zero"),
            Trap::StackOverflow => write!(f, "call stack overflow"),
            Trap::OutOfMemory => write!(f, "heap limit exceeded"),
            Trap::NotRunning => write!(f, "machine is not running"),
            Trap::ArityMismatch { expected, given } => {
                write!(f, "call expected {expected} argument(s), got {given}")
            }
            Trap::IllTyped(what) => write!(f, "ill-typed value in {what}"),
            Trap::Injected => write!(f, "injected synthetic fault"),
        }
    }
}

impl std::error::Error for Trap {}

/// Result of [`Machine::run`].
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The entry function returned; its return value, if any.
    Finished(Option<Value>),
    /// The step budget was exhausted before completion.
    Paused,
}

/// One call frame.
#[derive(Debug, Clone, PartialEq)]
struct Frame {
    func: FuncId,
    block: BlockId,
    inst: usize,
    vars: Vec<Value>,
    /// Where the caller wants the return value.
    ret_dst: Option<VarId>,
}

/// Execution limits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Limits {
    /// Maximum call-stack depth.
    pub max_depth: usize,
    /// Maximum total heap cells.
    pub max_heap_cells: u64,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_depth: 4096,
            max_heap_cells: 256 << 20,
        }
    }
}

/// A full copy of machine state, restorable with [`Machine::restore`].
///
/// `PartialEq` compares full state field-wise (floats by IEEE equality),
/// which differential tests use to assert two restore paths converge on
/// identical machines.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    heap: Vec<Obj>,
    frames: Vec<Frame>,
    output: Vec<OutputItem>,
    steps: u64,
    heap_cells: u64,
    finished: Option<Option<Value>>,
}

/// Where execution currently stands (used by stepping drivers to decide
/// when to snapshot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Position {
    /// Current function.
    pub func: FuncId,
    /// Current block.
    pub block: BlockId,
    /// Next instruction index within the block (`== insts.len()` means the
    /// terminator is next).
    pub inst: usize,
    /// Frame depth (0 = entry frame).
    pub depth: usize,
}

/// Monotonic operation counters for one machine's lifetime.
///
/// Unlike [`Machine::steps`], these are **not** part of machine state:
/// [`Machine::restore`] does not rewind them, so they keep counting across
/// snapshot/restore cycles. Observability consumers read deltas around
/// the region they care about ([`OpCounts::since`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Heap objects allocated (frame-local arrays, `new` structs/arrays).
    pub heap_allocs: u64,
    /// Heap cells allocated in total.
    pub heap_cells_allocated: u64,
    /// Heap cell reads (indexed, field and global loads).
    pub heap_reads: u64,
    /// Heap cell writes (indexed, field and global stores).
    pub heap_writes: u64,
}

impl OpCounts {
    /// The counts accumulated since `earlier` was captured.
    #[must_use]
    pub fn since(&self, earlier: &OpCounts) -> OpCounts {
        OpCounts {
            heap_allocs: self.heap_allocs - earlier.heap_allocs,
            heap_cells_allocated: self.heap_cells_allocated - earlier.heap_cells_allocated,
            heap_reads: self.heap_reads - earlier.heap_reads,
            heap_writes: self.heap_writes - earlier.heap_writes,
        }
    }

    /// Field-wise sum.
    #[must_use]
    pub fn plus(&self, other: &OpCounts) -> OpCounts {
        OpCounts {
            heap_allocs: self.heap_allocs + other.heap_allocs,
            heap_cells_allocated: self.heap_cells_allocated + other.heap_cells_allocated,
            heap_reads: self.heap_reads + other.heap_reads,
            heap_writes: self.heap_writes + other.heap_writes,
        }
    }
}

/// Undo record for one journaled heap-cell overwrite.
#[derive(Debug, Clone, Copy)]
struct CellUndo {
    obj: ObjId,
    cell: u32,
    old: Value,
}

/// An armed write journal: everything needed to rewind the machine to
/// the state it had at [`Machine::begin_journal`] in time proportional
/// to the work performed since, not to total machine state.
///
/// Heap-cell overwrites are logged individually (old value per cell);
/// objects allocated after arming need no per-cell log because the heap
/// is append-only during execution, so truncating back to the armed
/// length discards them wholesale. Frames are captured by clone at
/// arming time: [`Hooks`] implementations receive `&mut [Value]` views
/// of frame variables and may rewrite them without the machine seeing
/// the store, so per-write frame journaling is impossible — but frames
/// are small next to the heap, so the O(writes) bound still holds where
/// it matters. Output is append-only and rewound by watermark.
#[derive(Debug, Clone)]
struct Journal {
    base_heap_len: usize,
    base_heap_cells: u64,
    base_output_len: usize,
    base_steps: u64,
    base_finished: Option<Option<Value>>,
    base_frames: Vec<Frame>,
    cells: Vec<CellUndo>,
}

/// Monotonic journal counters for one machine's lifetime.
///
/// Like [`OpCounts`], these are harness state, not program state:
/// neither [`Machine::restore`] nor [`Machine::rollback`] rewinds them,
/// and observability consumers read deltas ([`JournalStats::since`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Completed [`Machine::rollback`] calls.
    pub rollbacks: u64,
    /// Heap-cell undo records replayed by rollbacks.
    pub cells_undone: u64,
    /// Post-arming heap objects discarded by rollback truncation.
    pub objs_discarded: u64,
}

impl JournalStats {
    /// The counts accumulated since `earlier` was captured.
    #[must_use]
    pub fn since(&self, earlier: &JournalStats) -> JournalStats {
        JournalStats {
            rollbacks: self.rollbacks - earlier.rollbacks,
            cells_undone: self.cells_undone - earlier.cells_undone,
            objs_discarded: self.objs_discarded - earlier.objs_discarded,
        }
    }

    /// Field-wise sum.
    #[must_use]
    pub fn plus(&self, other: &JournalStats) -> JournalStats {
        JournalStats {
            rollbacks: self.rollbacks + other.rollbacks,
            cells_undone: self.cells_undone + other.cells_undone,
            objs_discarded: self.objs_discarded + other.objs_discarded,
        }
    }
}

/// The interpreter state for one program execution.
#[derive(Debug, Clone)]
pub struct Machine<'m> {
    module: &'m Module,
    heap: Vec<Obj>,
    frames: Vec<Frame>,
    output: Vec<OutputItem>,
    steps: u64,
    heap_cells: u64,
    limits: Limits,
    finished: Option<Option<Value>>,
    ops: OpCounts,
    /// Fault injection: allocations remaining before the next [`Machine::alloc`]
    /// traps with [`Trap::OutOfMemory`]. Like [`OpCounts`], this is harness
    /// state, not program state: [`Machine::restore`] does not reset it.
    alloc_fault: Option<u64>,
    /// Armed write journal, if any. `None` (the common case) costs one
    /// branch per heap store.
    journal: Option<Journal>,
    journal_stats: JournalStats,
}

impl<'m> Machine<'m> {
    /// Creates a machine with globals allocated and initialized; no frame
    /// is live until [`Machine::push_call`].
    pub fn new(module: &'m Module) -> Self {
        Self::with_limits(module, Limits::default())
    }

    /// Creates a machine with explicit execution limits.
    pub fn with_limits(module: &'m Module, limits: Limits) -> Self {
        let mut heap = Vec::with_capacity(module.globals.len());
        let mut heap_cells = 0u64;
        for g in &module.globals {
            let cells = match &g.ty {
                Ty::Array(elem, n) => vec![zero_of(elem); *n],
                ty => {
                    let mut v = zero_of(ty);
                    if let Some(init) = &g.init {
                        v = const_value(init);
                    }
                    vec![v]
                }
            };
            heap_cells += cells.len() as u64;
            heap.push(Obj { cells });
        }
        Machine {
            module,
            heap,
            frames: Vec::new(),
            output: Vec::new(),
            steps: 0,
            heap_cells,
            limits,
            finished: None,
            ops: OpCounts::default(),
            alloc_fault: None,
            journal: None,
            journal_stats: JournalStats::default(),
        }
    }

    /// Arms deterministic allocation-failure injection: the next `n` heap
    /// allocations succeed, the one after traps with [`Trap::OutOfMemory`].
    /// Exercises the genuine out-of-memory path without a huge heap.
    pub fn fail_alloc_after(&mut self, n: u64) {
        self.alloc_fault = Some(n);
    }

    /// Disarms allocation-failure injection. Harnesses that reuse one
    /// machine across replays call this between replays, since neither
    /// [`Machine::restore`] nor [`Machine::rollback`] resets it.
    pub fn clear_alloc_fault(&mut self) {
        self.alloc_fault = None;
    }

    /// The module being executed.
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// Heap objects (globals first).
    pub fn heap(&self) -> &[Obj] {
        &self.heap
    }

    /// The cells of one heap object — the accessor the streaming
    /// live-out digest walks with (no per-call allocation, no copy).
    ///
    /// # Panics
    ///
    /// Panics if `o` does not name a live heap object.
    pub fn obj_cells(&self, o: ObjId) -> &[Value] {
        &self.heap[o.index()].cells
    }

    /// Number of global heap objects (they occupy the first slots of
    /// [`Machine::heap`], in declaration order).
    pub fn globals_len(&self) -> usize {
        self.module.globals.len()
    }

    /// The heap object backing global `g`.
    pub fn global_obj(&self, g: dca_ir::GlobalId) -> ObjId {
        ObjId(g.0)
    }

    /// The output stream so far.
    pub fn output(&self) -> &[OutputItem] {
        &self.output
    }

    /// Instructions and terminators executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Monotonic heap-operation counters for this machine's lifetime.
    /// Not rewound by [`Machine::restore`] — see [`OpCounts`].
    pub fn op_counts(&self) -> OpCounts {
        self.ops
    }

    /// The entry function's return value, once finished.
    pub fn result(&self) -> Option<Option<Value>> {
        self.finished
    }

    /// Current execution position, `None` when no frame is live.
    pub fn position(&self) -> Option<Position> {
        self.frames.last().map(|f| Position {
            func: f.func,
            block: f.block,
            inst: f.inst,
            depth: self.frames.len() - 1,
        })
    }

    /// Reads a variable of the *current* frame.
    ///
    /// # Panics
    ///
    /// Panics if no frame is live.
    pub fn read_var(&self, v: VarId) -> Value {
        // invariant: documented API contract — callers only inspect
        // variables while a frame is live (never reachable from program
        // input, only from caller misuse).
        self.frames.last().expect("no live frame").vars[v.index()]
    }

    /// Overwrites a variable of the *current* frame.
    ///
    /// # Panics
    ///
    /// Panics if no frame is live.
    pub fn write_var(&mut self, v: VarId, value: Value) {
        // invariant: documented API contract, as for `read_var`.
        self.frames.last_mut().expect("no live frame").vars[v.index()] = value;
    }

    /// Reads a memory cell directly (no hook events).
    pub fn read_cell(&self, addr: Addr) -> Value {
        self.heap[addr.obj.index()].cells[addr.cell as usize]
    }

    /// Overwrites a memory cell directly — no hook events, no journal
    /// entry, no op counting. Test and bench harnesses use this to build
    /// heap states source programs cannot express (specific NaN
    /// payloads, signed zeros); engine replay code never calls it.
    ///
    /// # Panics
    ///
    /// Panics if `addr` does not name a live cell.
    pub fn poke_cell(&mut self, addr: Addr, value: Value) {
        self.heap[addr.obj.index()].cells[addr.cell as usize] = value;
    }

    /// Captures a restorable copy of the full machine state.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            heap: self.heap.clone(),
            frames: self.frames.clone(),
            output: self.output.clone(),
            steps: self.steps,
            heap_cells: self.heap_cells,
            finished: self.finished,
        }
    }

    /// Restores a snapshot (on this machine or any machine for the same
    /// module); the output stream is reset to the snapshot point. An
    /// armed journal is discarded: the snapshot wins.
    ///
    /// The output stream is append-only during execution, so a machine
    /// whose stream has reached or passed the snapshot watermark still
    /// holds the snapshot's prefix unchanged — truncating to the
    /// watermark is then equivalent to the old full clone without
    /// re-allocating every label. A shorter stream (e.g. a freshly
    /// constructed worker machine) genuinely lacks the prefix and takes
    /// the clone path. Restoring onto a machine whose output history
    /// diverged from the snapshot's (only possible by interleaving
    /// restores from unrelated snapshots) is unsupported and
    /// debug-checked.
    pub fn restore(&mut self, snap: &Snapshot) {
        self.journal = None;
        self.heap = snap.heap.clone();
        self.frames = snap.frames.clone();
        if self.output.len() >= snap.output.len() {
            debug_assert!(
                output_prefix_eq(&self.output, &snap.output),
                "restore target's output diverged from the snapshot prefix"
            );
            self.output.truncate(snap.output.len());
        } else {
            self.output = snap.output.clone();
        }
        self.steps = snap.steps;
        self.heap_cells = snap.heap_cells;
        self.finished = snap.finished;
    }

    /// Arms the write journal: until [`Machine::rollback`], every heap
    /// store logs the cell's prior value (for pre-existing objects) and
    /// the heap/output high-water marks are remembered, so the machine
    /// can be rewound to this exact state in O(writes performed) instead
    /// of O(total state). Frame variables are captured by clone here —
    /// hooks may rewrite them through `&mut [Value]` without the machine
    /// observing the store, so they cannot be journaled per write.
    ///
    /// # Panics
    ///
    /// Panics if a journal is already armed; regions never nest.
    pub fn begin_journal(&mut self) {
        assert!(self.journal.is_none(), "journal already armed");
        self.journal = Some(Journal {
            base_heap_len: self.heap.len(),
            base_heap_cells: self.heap_cells,
            base_output_len: self.output.len(),
            base_steps: self.steps,
            base_finished: self.finished,
            base_frames: self.frames.clone(),
            cells: Vec::new(),
        });
    }

    /// Whether a journal is currently armed.
    pub fn journal_armed(&self) -> bool {
        self.journal.is_some()
    }

    /// The armed journal's heap-cell undo records, oldest first: one
    /// `(addr, prior_value)` pair per logged overwrite of a pre-existing
    /// object (a cell overwritten several times appears once per write,
    /// and its *first* record holds the value from before the region).
    /// Empty when no journal is armed. The parallel executor reads this
    /// as each worker's write-set: the touched cells are exactly these
    /// addresses, and the worker's contribution is the machine's current
    /// value at each of them.
    pub fn journal_writes(&self) -> impl Iterator<Item = (Addr, Value)> + '_ {
        self.journal.iter().flat_map(|j| {
            j.cells.iter().map(|u| {
                (
                    Addr {
                        obj: u.obj,
                        cell: u.cell,
                    },
                    u.old,
                )
            })
        })
    }

    /// Monotonic journal counters for this machine's lifetime. Not
    /// rewound by [`Machine::restore`] or [`Machine::rollback`] — see
    /// [`JournalStats`].
    pub fn journal_stats(&self) -> JournalStats {
        self.journal_stats
    }

    /// Rewinds the machine to the state it had at [`Machine::begin_journal`]
    /// and disarms the journal. Undo records are replayed newest-first,
    /// so a cell overwritten several times ends on its original value;
    /// objects allocated since arming are discarded by truncating the
    /// (append-only) heap. Safe after any exit from the journaled region
    /// — clean finish, trap mid-write, budget pause, or a panic caught
    /// by the engine's containment layer, in which case the *next* user
    /// of the machine rolls the armed journal back.
    ///
    /// # Panics
    ///
    /// Panics if no journal is armed.
    pub fn rollback(&mut self) {
        let j = self.journal.take().expect("rollback without armed journal");
        for u in j.cells.iter().rev() {
            self.heap[u.obj.index()].cells[u.cell as usize] = u.old;
        }
        self.journal_stats.cells_undone += j.cells.len() as u64;
        self.journal_stats.objs_discarded += (self.heap.len() - j.base_heap_len) as u64;
        self.heap.truncate(j.base_heap_len);
        self.output.truncate(j.base_output_len);
        self.frames = j.base_frames;
        self.steps = j.base_steps;
        self.heap_cells = j.base_heap_cells;
        self.finished = j.base_finished;
        self.journal_stats.rollbacks += 1;
    }

    /// Logs the prior value of a heap cell about to be overwritten, when
    /// a journal is armed and the object predates it (younger objects
    /// are discarded wholesale by rollback truncation).
    #[inline]
    fn journal_cell(&mut self, obj: ObjId, cell: u32) {
        if let Some(j) = &mut self.journal {
            if obj.index() < j.base_heap_len {
                j.cells.push(CellUndo {
                    obj,
                    cell,
                    old: self.heap[obj.index()].cells[cell as usize],
                });
            }
        }
    }

    /// Pushes a call frame for `func` with the given arguments, making it
    /// the running frame. `main` is typically pushed exactly once.
    ///
    /// # Errors
    ///
    /// Traps on stack overflow, if frame-array allocation exhausts the
    /// heap limit, or with [`Trap::ArityMismatch`] when the argument count
    /// does not match the signature.
    pub fn push_call(&mut self, func: FuncId, args: &[Value]) -> Result<(), Trap> {
        self.push_frame(func, args, None)
    }

    fn push_frame(
        &mut self,
        func: FuncId,
        args: &[Value],
        ret_dst: Option<VarId>,
    ) -> Result<(), Trap> {
        if self.frames.len() >= self.limits.max_depth {
            return Err(Trap::StackOverflow);
        }
        let f = self.module.func(func);
        if args.len() != f.params.len() {
            return Err(Trap::ArityMismatch {
                expected: f.params.len(),
                given: args.len(),
            });
        }
        let mut vars = Vec::with_capacity(f.vars.len());
        for (i, vi) in f.vars.iter().enumerate() {
            if i < args.len() {
                vars.push(args[i]);
            } else if let Ty::Array(elem, n) = &vi.ty {
                let obj = self.alloc(vec![zero_of(elem); *n])?;
                vars.push(Value::Ptr(obj));
            } else {
                vars.push(zero_of(&vi.ty));
            }
        }
        self.frames.push(Frame {
            func,
            block: f.entry(),
            inst: 0,
            vars,
            ret_dst,
        });
        self.finished = None;
        Ok(())
    }

    fn alloc(&mut self, cells: Vec<Value>) -> Result<ObjId, Trap> {
        if let Some(left) = &mut self.alloc_fault {
            if *left == 0 {
                return Err(Trap::OutOfMemory);
            }
            *left -= 1;
        }
        self.ops.heap_allocs += 1;
        self.ops.heap_cells_allocated += cells.len() as u64;
        self.heap_cells += cells.len() as u64;
        if self.heap_cells > self.limits.max_heap_cells {
            return Err(Trap::OutOfMemory);
        }
        let id = ObjId(self.heap.len() as u32);
        self.heap.push(Obj { cells });
        Ok(id)
    }

    /// Runs until the entry frame returns or `max_steps` is exhausted.
    ///
    /// # Errors
    ///
    /// Propagates the first [`Trap`].
    pub fn run<H: Hooks>(&mut self, hooks: &mut H, max_steps: u64) -> Result<Outcome, Trap> {
        let budget_end = self.steps.saturating_add(max_steps);
        // Fire the block-entry hook for the entry block of a fresh frame.
        if !self.frames.is_empty() {
            let depth = self.frames.len() - 1;
            let steps = self.steps;
            // invariant: guarded by the `is_empty` check above.
            let fr = self.frames.last_mut().expect("non-empty");
            if fr.inst == 0 && steps == 0 {
                let site = Site {
                    func: fr.func,
                    depth,
                    steps,
                };
                hooks.on_block(site, fr.block, &mut fr.vars);
            }
        }
        while self.finished.is_none() {
            if self.steps >= budget_end {
                return Ok(Outcome::Paused);
            }
            self.step(hooks)?;
        }
        // invariant: the while condition above only exits on `Some`.
        Ok(Outcome::Finished(
            self.finished.expect("loop exits only when finished"),
        ))
    }

    /// Executes one instruction or terminator.
    ///
    /// # Errors
    ///
    /// Returns the first [`Trap`], including [`Trap::NotRunning`] when no
    /// frame is live.
    pub fn step<H: Hooks>(&mut self, hooks: &mut H) -> Result<(), Trap> {
        let depth = match self.frames.len() {
            0 => return Err(Trap::NotRunning),
            n => n - 1,
        };
        let fi = depth;
        let func_id = self.frames[fi].func;
        let func = self.module.func(func_id);
        let block = self.frames[fi].block;
        let idx = self.frames[fi].inst;
        let site = Site {
            func: func_id,
            depth,
            steps: self.steps,
        };
        self.steps += 1;
        let insts = &func.block(block).insts;
        if idx < insts.len() {
            self.frames[fi].inst += 1;
            let action = hooks.before_inst(site, block, idx, &mut self.frames[fi].vars);
            if action == InstAction::Run {
                self.exec_inst(hooks, site, fi, &insts[idx])?;
            }
            // The instruction may have pushed a frame (a call); only fire
            // after_inst once we are back in this frame, which for calls is
            // handled implicitly because hooks see on_call/on_return.
            if self.frames.len() == fi + 1 {
                hooks.after_inst(site, block, idx, &mut self.frames[fi].vars);
            }
            // Entering a callee: fire its entry block hook.
            if self.frames.len() > fi + 1 {
                let nfi = self.frames.len() - 1;
                let nsite = Site {
                    func: self.frames[nfi].func,
                    depth: nfi,
                    steps: self.steps,
                };
                let nblock = self.frames[nfi].block;
                hooks.on_block(nsite, nblock, &mut self.frames[nfi].vars);
            }
            return Ok(());
        }
        // Terminator.
        let term = &func.block(block).term;
        let default_target = match term {
            Terminator::Jump(t) => Some(*t),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                // Reachable with a non-bool value when an entry argument
                // of the wrong type flows into the condition.
                let c = match eval(&self.frames[fi].vars, cond) {
                    Value::Bool(c) => c,
                    _ => return Err(Trap::IllTyped("branch condition")),
                };
                Some(if c { *then_bb } else { *else_bb })
            }
            Terminator::Return(_) => None,
        };
        let action = hooks.on_term(site, block, default_target, &mut self.frames[fi].vars);
        let target = match action {
            TermAction::Goto(b) => Some(b),
            TermAction::Default => default_target,
        };
        match target {
            Some(t) => {
                self.frames[fi].block = t;
                self.frames[fi].inst = 0;
                hooks.on_block(site, t, &mut self.frames[fi].vars);
            }
            None => {
                // Return.
                let value = match term {
                    Terminator::Return(Some(op)) => Some(eval(&self.frames[fi].vars, op)),
                    _ => None,
                };
                // invariant: `depth` was computed from a non-empty stack
                // at the top of `step`, and nothing popped since.
                let frame = self.frames.pop().expect("frame exists");
                hooks.on_return(
                    Site {
                        func: func_id,
                        depth: self.frames.len(),
                        steps: self.steps,
                    },
                    func_id,
                );
                match self.frames.last_mut() {
                    None => {
                        self.finished = Some(value);
                    }
                    Some(caller) => {
                        if let Some(dst) = frame.ret_dst {
                            // invariant: the IR checker rejects binding the
                            // result of a unit-returning call, so a frame
                            // with `ret_dst` always returns a value.
                            caller.vars[dst.index()] =
                                value.expect("checker: non-unit call has a value");
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn exec_inst<H: Hooks>(
        &mut self,
        hooks: &mut H,
        site: Site,
        fi: usize,
        inst: &Inst,
    ) -> Result<(), Trap> {
        match inst {
            Inst::Copy { dst, src } => {
                let v = eval(&self.frames[fi].vars, src);
                self.frames[fi].vars[dst.index()] = v;
            }
            Inst::Un { dst, op, a } => {
                let av = eval(&self.frames[fi].vars, a);
                let v = match (op, av) {
                    (UnOp::Neg, Value::Int(x)) => Value::Int(x.wrapping_neg()),
                    (UnOp::Neg, Value::Float(x)) => Value::Float(-x),
                    (UnOp::Not, Value::Bool(x)) => Value::Bool(!x),
                    _ => return Err(Trap::IllTyped("unary operation")),
                };
                self.frames[fi].vars[dst.index()] = v;
            }
            Inst::Bin { dst, op, a, b } => {
                let av = eval(&self.frames[fi].vars, a);
                let bv = eval(&self.frames[fi].vars, b);
                let v = eval_bin(*op, av, bv)?;
                self.frames[fi].vars[dst.index()] = v;
            }
            Inst::Intrin { dst, op, args } => {
                let a0 = eval(&self.frames[fi].vars, &args[0]);
                let a1 = args.get(1).map(|a| eval(&self.frames[fi].vars, a));
                self.frames[fi].vars[dst.index()] = eval_intrin(*op, a0, a1)?;
            }
            Inst::LoadIndex { dst, base, index } => {
                let addr = self.index_addr(fi, base, index)?;
                self.ops.heap_reads += 1;
                hooks.on_read(site, addr);
                let v = self.heap[addr.obj.index()].cells[addr.cell as usize];
                self.frames[fi].vars[dst.index()] = v;
            }
            Inst::StoreIndex { base, index, value } => {
                let addr = self.index_addr(fi, base, index)?;
                let v = eval(&self.frames[fi].vars, value);
                self.ops.heap_writes += 1;
                hooks.on_write(site, addr);
                hooks.on_store(
                    site,
                    addr,
                    self.heap[addr.obj.index()].cells[addr.cell as usize],
                    v,
                );
                self.journal_cell(addr.obj, addr.cell);
                self.heap[addr.obj.index()].cells[addr.cell as usize] = v;
            }
            Inst::LoadField { dst, obj, field } => {
                let addr = self.field_addr(fi, obj, *field)?;
                self.ops.heap_reads += 1;
                hooks.on_read(site, addr);
                let v = self.heap[addr.obj.index()].cells[addr.cell as usize];
                self.frames[fi].vars[dst.index()] = v;
            }
            Inst::StoreField { obj, field, value } => {
                let addr = self.field_addr(fi, obj, *field)?;
                let v = eval(&self.frames[fi].vars, value);
                self.ops.heap_writes += 1;
                hooks.on_write(site, addr);
                hooks.on_store(
                    site,
                    addr,
                    self.heap[addr.obj.index()].cells[addr.cell as usize],
                    v,
                );
                self.journal_cell(addr.obj, addr.cell);
                self.heap[addr.obj.index()].cells[addr.cell as usize] = v;
            }
            Inst::LoadGlobal { dst, global } => {
                let addr = Addr {
                    obj: ObjId(global.0),
                    cell: 0,
                };
                self.ops.heap_reads += 1;
                hooks.on_read(site, addr);
                let v = self.heap[addr.obj.index()].cells[0];
                self.frames[fi].vars[dst.index()] = v;
            }
            Inst::StoreGlobal { global, value } => {
                let addr = Addr {
                    obj: ObjId(global.0),
                    cell: 0,
                };
                let v = eval(&self.frames[fi].vars, value);
                self.ops.heap_writes += 1;
                hooks.on_write(site, addr);
                hooks.on_store(site, addr, self.heap[addr.obj.index()].cells[0], v);
                self.journal_cell(addr.obj, addr.cell);
                self.heap[addr.obj.index()].cells[0] = v;
            }
            Inst::AllocStruct { dst, sid } => {
                let layout = &self.module.structs[sid.index()];
                let cells: Vec<Value> = layout.fields.iter().map(|(_, t)| zero_of(t)).collect();
                let obj = self.alloc(cells)?;
                self.frames[fi].vars[dst.index()] = Value::Ptr(obj);
            }
            Inst::AllocArray { dst, len } => {
                let n = match eval(&self.frames[fi].vars, len) {
                    Value::Int(n) => n,
                    _ => return Err(Trap::IllTyped("array length")),
                };
                if n < 0 {
                    return Err(Trap::OutOfBounds { len: 0, index: n });
                }
                let obj = self.alloc(vec![Value::Int(0); n as usize])?;
                self.frames[fi].vars[dst.index()] = Value::Ptr(obj);
            }
            Inst::Call { dst, func, args } => {
                let argv: Vec<Value> = args
                    .iter()
                    .map(|a| eval(&self.frames[fi].vars, a))
                    .collect();
                hooks.on_call(site, *func);
                self.push_frame(*func, &argv, *dst)?;
            }
            Inst::Print { args } => {
                for a in args {
                    match a {
                        PrintOp::Label(s) => self.output.push(OutputItem::Label(s.clone())),
                        PrintOp::Value(op) => {
                            let v = eval(&self.frames[fi].vars, op);
                            self.output.push(OutputItem::Value(v));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn index_addr(&self, fi: usize, base: &MemBase, index: &Operand) -> Result<Addr, Trap> {
        let obj = match base {
            MemBase::Global(g) => ObjId(g.0),
            MemBase::Var(v) => match self.frames[fi].vars[v.index()] {
                Value::Ptr(o) => o,
                Value::Null => return Err(Trap::NullDeref),
                _ => return Err(Trap::IllTyped("index base")),
            },
        };
        let i = match eval(&self.frames[fi].vars, index) {
            Value::Int(i) => i,
            _ => return Err(Trap::IllTyped("index operand")),
        };
        let len = self.heap[obj.index()].cells.len();
        if i < 0 || i as usize >= len {
            return Err(Trap::OutOfBounds { len, index: i });
        }
        Ok(Addr {
            obj,
            cell: i as u32,
        })
    }

    fn field_addr(&self, fi: usize, obj: &Operand, field: u32) -> Result<Addr, Trap> {
        let o = match eval(&self.frames[fi].vars, obj) {
            Value::Ptr(o) => o,
            Value::Null => return Err(Trap::NullDeref),
            _ => return Err(Trap::IllTyped("field base")),
        };
        // invariant: the checker bounds field indices by the struct layout,
        // and every pointer to a struct of that type has that many cells.
        debug_assert!((field as usize) < self.heap[o.index()].cells.len());
        Ok(Addr {
            obj: o,
            cell: field,
        })
    }
}

/// Debug check for [`Machine::restore`]'s truncate fast path: the target
/// machine's output must begin with the snapshot's stream. Floats compare
/// by bit pattern so a NaN printed before the snapshot point does not
/// fail the check against its own copy. (Compiled in release too —
/// `debug_assert!` type-checks its condition in every profile — but only
/// evaluated under `debug_assertions`.)
fn output_prefix_eq(long: &[OutputItem], prefix: &[OutputItem]) -> bool {
    long.len() >= prefix.len()
        && long[..prefix.len()]
            .iter()
            .zip(prefix)
            .all(|(a, b)| match (a, b) {
                (OutputItem::Value(Value::Float(x)), OutputItem::Value(Value::Float(y))) => {
                    x.to_bits() == y.to_bits()
                }
                _ => a == b,
            })
}

fn zero_of(ty: &Ty) -> Value {
    match ty {
        Ty::Int => Value::Int(0),
        Ty::Float => Value::Float(0.0),
        Ty::Bool => Value::Bool(false),
        _ => Value::Null,
    }
}

fn const_value(op: &Operand) -> Value {
    match op {
        Operand::ConstInt(v) => Value::Int(*v),
        Operand::ConstFloat(v) => Value::Float(*v),
        Operand::ConstBool(v) => Value::Bool(*v),
        Operand::Null => Value::Null,
        // invariant: the parser only accepts constant global initializers.
        Operand::Var(_) => unreachable!("global initializers are constants"),
    }
}

#[inline]
fn eval(vars: &[Value], op: &Operand) -> Value {
    match op {
        Operand::Var(v) => vars[v.index()],
        Operand::ConstInt(v) => Value::Int(*v),
        Operand::ConstFloat(v) => Value::Float(*v),
        Operand::ConstBool(v) => Value::Bool(*v),
        Operand::Null => Value::Null,
    }
}

fn eval_bin(op: BinOp, a: Value, b: Value) -> Result<Value, Trap> {
    use BinOp::*;
    Ok(match (op, a, b) {
        (Add, Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_add(y)),
        (Sub, Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_sub(y)),
        (Mul, Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_mul(y)),
        (Div, Value::Int(_), Value::Int(0)) | (Rem, Value::Int(_), Value::Int(0)) => {
            return Err(Trap::DivByZero)
        }
        (Div, Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_div(y)),
        (Rem, Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_rem(y)),
        (Add, Value::Float(x), Value::Float(y)) => Value::Float(x + y),
        (Sub, Value::Float(x), Value::Float(y)) => Value::Float(x - y),
        (Mul, Value::Float(x), Value::Float(y)) => Value::Float(x * y),
        (Div, Value::Float(x), Value::Float(y)) => Value::Float(x / y),
        (Eq, x, y) => Value::Bool(value_eq(x, y)?),
        (Ne, x, y) => Value::Bool(!value_eq(x, y)?),
        (Lt, Value::Int(x), Value::Int(y)) => Value::Bool(x < y),
        (Le, Value::Int(x), Value::Int(y)) => Value::Bool(x <= y),
        (Gt, Value::Int(x), Value::Int(y)) => Value::Bool(x > y),
        (Ge, Value::Int(x), Value::Int(y)) => Value::Bool(x >= y),
        (Lt, Value::Float(x), Value::Float(y)) => Value::Bool(x < y),
        (Le, Value::Float(x), Value::Float(y)) => Value::Bool(x <= y),
        (Gt, Value::Float(x), Value::Float(y)) => Value::Bool(x > y),
        (Ge, Value::Float(x), Value::Float(y)) => Value::Bool(x >= y),
        (BitAnd, Value::Int(x), Value::Int(y)) => Value::Int(x & y),
        (BitOr, Value::Int(x), Value::Int(y)) => Value::Int(x | y),
        (BitXor, Value::Int(x), Value::Int(y)) => Value::Int(x ^ y),
        (Shl, Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_shl(y as u32 & 63)),
        (Shr, Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_shr(y as u32 & 63)),
        _ => return Err(Trap::IllTyped("binary operation")),
    })
}

fn value_eq(a: Value, b: Value) -> Result<bool, Trap> {
    Ok(match (a, b) {
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => x == y,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Ptr(x), Value::Ptr(y)) => x == y,
        (Value::Null, Value::Null) => true,
        (Value::Ptr(_), Value::Null) | (Value::Null, Value::Ptr(_)) => false,
        _ => return Err(Trap::IllTyped("equality comparison")),
    })
}

fn eval_intrin(op: Intrinsic, a: Value, b: Option<Value>) -> Result<Value, Trap> {
    use Intrinsic::*;
    fn flt(v: Value) -> Result<f64, Trap> {
        match v {
            Value::Float(x) => Ok(x),
            _ => Err(Trap::IllTyped("float intrinsic operand")),
        }
    }
    fn int(v: Value) -> Result<i64, Trap> {
        match v {
            Value::Int(x) => Ok(x),
            _ => Err(Trap::IllTyped("int intrinsic operand")),
        }
    }
    // invariant: the checker fixes intrinsic arity, so two-argument
    // intrinsics always arrive with `b` present; only the value *kinds*
    // can be wrong (via ill-typed entry arguments).
    let b2 = |b: Option<Value>| b.expect("checker: two-argument intrinsic");
    Ok(match op {
        Sqrt => Value::Float(flt(a)?.sqrt()),
        Sin => Value::Float(flt(a)?.sin()),
        Cos => Value::Float(flt(a)?.cos()),
        Exp => Value::Float(flt(a)?.exp()),
        Log => Value::Float(flt(a)?.ln()),
        Fabs => Value::Float(flt(a)?.abs()),
        Pow => Value::Float(flt(a)?.powf(flt(b2(b))?)),
        Fmin => Value::Float(flt(a)?.min(flt(b2(b))?)),
        Fmax => Value::Float(flt(a)?.max(flt(b2(b))?)),
        Iabs => Value::Int(int(a)?.wrapping_abs()),
        Imin => Value::Int(int(a)?.min(int(b2(b))?)),
        Imax => Value::Int(int(a)?.max(int(b2(b))?)),
        IntToFloat => Value::Float(int(a)? as f64),
        FloatToInt => Value::Int(flt(a)? as i64),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoHooks;
    use dca_ir::compile;

    /// The parallel DCA engine runs one [`Machine`] per worker thread,
    /// all restored from one shared [`Snapshot`] of a shared [`Module`].
    /// That requires `Machine: Send` (created inside a worker) and
    /// `Snapshot`/`Value`/`Module`: `Sync` (borrowed across workers) —
    /// all automatic today because the interpreter state is plain owned
    /// data (no `Rc`, `RefCell` or raw pointers). This assertion turns a
    /// future regression into a compile error at the point of cause.
    #[test]
    fn machine_state_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Machine<'_>>();
        assert_send_sync::<Snapshot>();
        assert_send_sync::<Value>();
        assert_send_sync::<dca_ir::Module>();
    }

    fn run_main(src: &str) -> (Option<Value>, Vec<OutputItem>) {
        let m = compile(src).expect("compile");
        let mut machine = Machine::new(&m);
        machine
            .push_call(m.main().expect("main"), &[])
            .expect("push main");
        match machine.run(&mut NoHooks, u64::MAX).expect("run") {
            Outcome::Finished(v) => (v, machine.output().to_vec()),
            Outcome::Paused => panic!("unexpected pause"),
        }
    }

    fn ret_int(src: &str) -> i64 {
        run_main(src).0.expect("return value").as_int()
    }

    #[test]
    fn arithmetic_and_control_flow() {
        assert_eq!(ret_int("fn main() -> int { return 6 * 7; }"), 42);
        assert_eq!(
            ret_int(
                "fn main() -> int { let s: int = 0; \
                 for (let i: int = 0; i < 10; i = i + 1) { s = s + i; } return s; }"
            ),
            45
        );
        assert_eq!(
            ret_int(
                "fn main() -> int { let x: int = 5; \
                 if (x > 3 && x < 7) { return 1; } return 0; }"
            ),
            1
        );
    }

    #[test]
    fn recursion() {
        assert_eq!(
            ret_int(
                "fn fib(n: int) -> int { if (n < 2) { return n; } \
                 return fib(n - 1) + fib(n - 2); }\n\
                 fn main() -> int { return fib(12); }"
            ),
            144
        );
    }

    #[test]
    fn heap_structs_and_lists() {
        assert_eq!(
            ret_int(
                "struct Node { val: int, next: *Node }\n\
                 fn main() -> int {\n\
                   let head: *Node = null;\n\
                   for (let i: int = 0; i < 5; i = i + 1) {\n\
                     let n: *Node = new Node; n.val = i; n.next = head; head = n;\n\
                   }\n\
                   let s: int = 0; let p: *Node = head;\n\
                   while (p != null) { s = s + p.val; p = p.next; }\n\
                   return s;\n\
                 }"
            ),
            10
        );
    }

    #[test]
    fn fixed_and_heap_arrays() {
        assert_eq!(
            ret_int(
                "fn main() -> int { let a: [int; 8]; let b: *int = new [int; 8];\n\
                 for (let i: int = 0; i < 8; i = i + 1) { a[i] = i; b[i] = i * 10; }\n\
                 let s: int = 0;\n\
                 for (let i: int = 0; i < 8; i = i + 1) { s = s + a[i] + b[i]; }\n\
                 return s; }"
            ),
            28 + 280
        );
    }

    #[test]
    fn globals_shared_across_functions() {
        assert_eq!(
            ret_int(
                "let counter: int = 10;\nlet arr: [int; 4];\n\
                 fn bump() { counter = counter + 1; arr[0] = arr[0] + 2; }\n\
                 fn main() -> int { bump(); bump(); return counter + arr[0]; }"
            ),
            16
        );
    }

    #[test]
    fn float_math_and_casts() {
        let (v, _) = run_main(
            "fn main() -> float { let x: float = sqrt(16.0); \
             let i: int = 3; return x + i as float + fmax(0.5, 0.25); }",
        );
        let f = v.expect("value").as_float();
        assert!((f - 7.5).abs() < 1e-12);
    }

    #[test]
    fn print_produces_output() {
        let (_, out) = run_main(r#"fn main() { print("x", 1 + 1); print(3.5); }"#);
        assert_eq!(
            out,
            vec![
                OutputItem::Label("x".into()),
                OutputItem::Value(Value::Int(2)),
                OutputItem::Value(Value::Float(3.5)),
            ]
        );
    }

    #[test]
    fn traps() {
        let m = compile("fn main() -> int { let a: [int; 2]; return a[5]; }").expect("compile");
        let mut machine = Machine::new(&m);
        machine
            .push_call(m.main().expect("main"), &[])
            .expect("push");
        assert_eq!(
            machine.run(&mut NoHooks, u64::MAX),
            Err(Trap::OutOfBounds { len: 2, index: 5 })
        );

        let m = compile("struct N { v: int } fn main() -> int { let p: *N = null; return p.v; }")
            .expect("compile");
        let mut machine = Machine::new(&m);
        machine
            .push_call(m.main().expect("main"), &[])
            .expect("push");
        assert_eq!(machine.run(&mut NoHooks, u64::MAX), Err(Trap::NullDeref));

        let m = compile("fn main() -> int { let z: int = 0; return 1 / z; }").expect("compile");
        let mut machine = Machine::new(&m);
        machine
            .push_call(m.main().expect("main"), &[])
            .expect("push");
        assert_eq!(machine.run(&mut NoHooks, u64::MAX), Err(Trap::DivByZero));
    }

    #[test]
    fn arity_mismatch_traps_instead_of_panicking() {
        let m = compile("fn main(n: int) -> int { return n; }").expect("compile");
        let mut machine = Machine::new(&m);
        assert_eq!(
            machine.push_call(m.main().expect("main"), &[]),
            Err(Trap::ArityMismatch {
                expected: 1,
                given: 0
            })
        );
        assert_eq!(
            machine.push_call(m.main().expect("main"), &[Value::Int(1), Value::Int(2)]),
            Err(Trap::ArityMismatch {
                expected: 1,
                given: 2
            })
        );
    }

    #[test]
    fn ill_typed_entry_arguments_trap_instead_of_panicking() {
        // A bool where an int is expected flows into `n + 1`.
        let m = compile("fn main(n: int) -> int { return n + 1; }").expect("compile");
        let mut machine = Machine::new(&m);
        machine
            .push_call(m.main().expect("main"), &[Value::Bool(true)])
            .expect("push");
        assert_eq!(
            machine.run(&mut NoHooks, u64::MAX),
            Err(Trap::IllTyped("binary operation"))
        );

        // An int where a bool is expected flows into a branch condition.
        let m =
            compile("fn main(f: bool) -> int { if (f) { return 1; } return 0; }").expect("compile");
        let mut machine = Machine::new(&m);
        machine
            .push_call(m.main().expect("main"), &[Value::Int(7)])
            .expect("push");
        assert_eq!(
            machine.run(&mut NoHooks, u64::MAX),
            Err(Trap::IllTyped("branch condition"))
        );

        // An int where a pointer is expected flows into an indexed load.
        let m = compile("fn main(p: *int) -> int { return p[0]; }").expect("compile");
        let mut machine = Machine::new(&m);
        machine
            .push_call(m.main().expect("main"), &[Value::Int(3)])
            .expect("push");
        assert_eq!(
            machine.run(&mut NoHooks, u64::MAX),
            Err(Trap::IllTyped("index base"))
        );
    }

    #[test]
    fn alloc_fault_injection_fails_the_nth_alloc() {
        let m = compile(
            "fn main() -> int { let a: *int = new [int; 4]; let b: *int = new [int; 4]; \
             let c: *int = new [int; 4]; return a[0] + b[0] + c[0]; }",
        )
        .expect("compile");
        let mut machine = Machine::new(&m);
        machine.fail_alloc_after(2);
        machine
            .push_call(m.main().expect("main"), &[])
            .expect("push");
        assert_eq!(machine.run(&mut NoHooks, u64::MAX), Err(Trap::OutOfMemory));
        // Exactly two allocations succeeded before the injected failure.
        assert_eq!(machine.op_counts().heap_allocs, 2);
    }

    #[test]
    fn stack_overflow_trap() {
        let m = compile(
            "fn loopy(n: int) -> int { return loopy(n + 1); }\n\
             fn main() -> int { return loopy(0); }",
        )
        .expect("compile");
        let mut machine = Machine::with_limits(
            &m,
            Limits {
                max_depth: 64,
                ..Limits::default()
            },
        );
        machine
            .push_call(m.main().expect("main"), &[])
            .expect("push");
        assert_eq!(
            machine.run(&mut NoHooks, u64::MAX),
            Err(Trap::StackOverflow)
        );
    }

    #[test]
    fn heap_limit_traps() {
        let m = compile(
            "struct N { v: int, next: *N }\n\
             fn main() { let head: *N = null; \
             for (let i: int = 0; i < 1000000; i = i + 1) { \
               let n: *N = new N; n.next = head; head = n; } }",
        )
        .expect("compile");
        let mut machine = Machine::with_limits(
            &m,
            Limits {
                max_heap_cells: 1024,
                ..Limits::default()
            },
        );
        machine
            .push_call(m.main().expect("main"), &[])
            .expect("push");
        assert_eq!(machine.run(&mut NoHooks, u64::MAX), Err(Trap::OutOfMemory));
    }

    #[test]
    fn step_budget_pauses() {
        let m = compile("fn main() { while (true) { } }").expect("compile");
        let mut machine = Machine::new(&m);
        machine
            .push_call(m.main().expect("main"), &[])
            .expect("push");
        assert_eq!(
            machine.run(&mut NoHooks, 1000).expect("run"),
            Outcome::Paused
        );
        assert!(machine.steps() >= 1000);
    }

    #[test]
    fn snapshot_restore_is_identity() {
        let m = compile(
            "fn main() -> int { let s: int = 0; \
             for (let i: int = 0; i < 100; i = i + 1) { s = s + i; } return s; }",
        )
        .expect("compile");
        let mut machine = Machine::new(&m);
        machine
            .push_call(m.main().expect("main"), &[])
            .expect("push");
        // Run partway, snapshot, run to the end, restore, run again.
        machine.run(&mut NoHooks, 50).expect("run");
        let snap = machine.snapshot();
        let r1 = machine.run(&mut NoHooks, u64::MAX).expect("run");
        let steps1 = machine.steps();
        machine.restore(&snap);
        let r2 = machine.run(&mut NoHooks, u64::MAX).expect("run");
        assert_eq!(r1, r2);
        assert_eq!(steps1, machine.steps());
        assert_eq!(r1, Outcome::Finished(Some(Value::Int(4950))));
    }

    #[test]
    fn op_counts_track_heap_ops_and_survive_restore() {
        let m = compile(
            "fn main() -> int { let a: [int; 8]; let s: int = 0; \
             for (let i: int = 0; i < 8; i = i + 1) { a[i] = i; } \
             for (let i: int = 0; i < 8; i = i + 1) { s = s + a[i]; } return s; }",
        )
        .expect("compile");
        let mut machine = Machine::new(&m);
        machine
            .push_call(m.main().expect("main"), &[])
            .expect("push");
        // The frame-local array allocation is one heap alloc of 8 cells.
        assert_eq!(machine.op_counts().heap_allocs, 1);
        assert_eq!(machine.op_counts().heap_cells_allocated, 8);
        let snap = machine.snapshot();
        machine.run(&mut NoHooks, u64::MAX).expect("run");
        let after_first = machine.op_counts();
        assert_eq!(after_first.heap_writes, 8);
        assert_eq!(after_first.heap_reads, 8);
        // Restore rewinds steps but NOT the monotonic op counters; a
        // second run adds the same deltas on top.
        machine.restore(&snap);
        assert_eq!(machine.op_counts(), after_first);
        machine.run(&mut NoHooks, u64::MAX).expect("run");
        let delta = machine.op_counts().since(&after_first);
        assert_eq!(delta.heap_writes, 8);
        assert_eq!(delta.heap_reads, 8);
        assert_eq!(delta.heap_allocs, 0);
    }

    #[test]
    fn snapshot_truncates_output_on_restore() {
        let m = compile(r#"fn main() { print(1); print(2); }"#).expect("compile");
        let mut machine = Machine::new(&m);
        machine
            .push_call(m.main().expect("main"), &[])
            .expect("push");
        let snap = machine.snapshot();
        machine.run(&mut NoHooks, u64::MAX).expect("run");
        assert_eq!(machine.output().len(), 2);
        machine.restore(&snap);
        assert!(machine.output().is_empty());
        machine.run(&mut NoHooks, u64::MAX).expect("run");
        assert_eq!(machine.output().len(), 2);

        // Watermark path: a snapshot taken after the first print has a
        // non-empty output prefix. A machine that ran past it rewinds by
        // truncation; a fresh machine (shorter stream) takes the clone
        // path. Both end bit-identical to the snapshot.
        let mut machine = Machine::new(&m);
        machine
            .push_call(m.main().expect("main"), &[])
            .expect("push");
        while machine.output().is_empty() {
            machine.step(&mut NoHooks).expect("step");
        }
        let mid = machine.snapshot();
        machine.run(&mut NoHooks, u64::MAX).expect("run");
        assert_eq!(machine.output().len(), 2);
        machine.restore(&mid);
        assert_eq!(machine.output(), &[OutputItem::Value(Value::Int(1))]);
        machine.run(&mut NoHooks, u64::MAX).expect("run");
        assert_eq!(machine.output().len(), 2);

        let mut fresh = Machine::new(&m);
        assert!(fresh.output().is_empty());
        fresh.restore(&mid);
        assert_eq!(fresh.output(), &[OutputItem::Value(Value::Int(1))]);
        assert_eq!(fresh.snapshot(), mid);
    }

    #[test]
    fn journal_rollback_matches_full_restore() {
        // Touch every journaled dimension: pre-existing heap (the global
        // array), fresh allocations, frame vars, output, steps.
        let m = compile(
            "let acc: [int; 4];\n\
             fn main() -> int {\n\
               for (let i: int = 0; i < 4; i = i + 1) { acc[i] = acc[i] + i; }\n\
               let n: *int = new [int; 2];\n\
               n[0] = 7; print(acc[3]);\n\
               return acc[0] + acc[3] + n[0];\n\
             }",
        )
        .expect("compile");
        let mut machine = Machine::new(&m);
        machine
            .push_call(m.main().expect("main"), &[])
            .expect("push");
        machine.run(&mut NoHooks, 2).expect("run partway");
        let snap = machine.snapshot();
        machine.begin_journal();
        assert!(machine.journal_armed());
        let r1 = machine.run(&mut NoHooks, u64::MAX).expect("run");
        machine.rollback();
        assert!(!machine.journal_armed());
        // Rolled-back state is bit-identical to a full restore target.
        assert_eq!(machine.snapshot(), snap);
        let stats = machine.journal_stats();
        assert_eq!(stats.rollbacks, 1);
        assert!(stats.cells_undone >= 4, "global writes must be logged");
        assert!(stats.objs_discarded >= 1, "new [int; 2] must be discarded");
        // And re-running from the rolled-back state reproduces the run.
        let r2 = machine.run(&mut NoHooks, u64::MAX).expect("rerun");
        assert_eq!(r1, r2);
    }

    #[test]
    fn journal_rollback_is_safe_after_trap_mid_write() {
        // The second store traps out of bounds after the first landed;
        // rollback must still rewind the completed write.
        let m = compile(
            "let g: [int; 2];\n\
             fn main(i: int) { g[0] = 1; g[i] = 2; }",
        )
        .expect("compile");
        let mut machine = Machine::new(&m);
        machine
            .push_call(m.main().expect("main"), &[Value::Int(9)])
            .expect("push");
        let snap = machine.snapshot();
        machine.begin_journal();
        assert_eq!(
            machine.run(&mut NoHooks, u64::MAX),
            Err(Trap::OutOfBounds { len: 2, index: 9 })
        );
        assert_eq!(
            machine.read_cell(Addr {
                obj: ObjId(0),
                cell: 0
            }),
            Value::Int(1)
        );
        machine.rollback();
        assert_eq!(machine.snapshot(), snap);
        assert_eq!(
            machine.read_cell(Addr {
                obj: ObjId(0),
                cell: 0
            }),
            Value::Int(0)
        );
    }

    #[test]
    fn restore_disarms_an_armed_journal() {
        let m = compile("let g: int = 3; fn main() { g = g + 1; }").expect("compile");
        let mut machine = Machine::new(&m);
        machine
            .push_call(m.main().expect("main"), &[])
            .expect("push");
        let snap = machine.snapshot();
        machine.begin_journal();
        machine.run(&mut NoHooks, u64::MAX).expect("run");
        machine.restore(&snap);
        assert!(!machine.journal_armed());
        assert_eq!(machine.snapshot(), snap);
        // The discarded journal contributed no rollback stats.
        assert_eq!(machine.journal_stats().rollbacks, 0);
    }

    #[test]
    fn arguments_passed_to_entry() {
        let m = compile("fn main(n: int) -> int { return n * 2; }").expect("compile");
        let mut machine = Machine::new(&m);
        machine
            .push_call(m.main().expect("main"), &[Value::Int(21)])
            .expect("push");
        assert_eq!(
            machine.run(&mut NoHooks, u64::MAX).expect("run"),
            Outcome::Finished(Some(Value::Int(42)))
        );
    }

    #[test]
    fn hooks_observe_memory_and_blocks() {
        #[derive(Default)]
        struct Counter {
            reads: usize,
            writes: usize,
            blocks: usize,
            calls: usize,
        }
        impl Hooks for Counter {
            fn on_read(&mut self, _: Site, _: Addr) {
                self.reads += 1;
            }
            fn on_write(&mut self, _: Site, _: Addr) {
                self.writes += 1;
            }
            fn on_block(&mut self, _: Site, _: BlockId, _: &mut [Value]) {
                self.blocks += 1;
            }
            fn on_call(&mut self, _: Site, _: FuncId) {
                self.calls += 1;
            }
        }
        let m = compile(
            "fn touch(a: *int) { a[0] = a[0] + 1; }\n\
             fn main() { let a: *int = new [int; 4]; touch(a); touch(a); }",
        )
        .expect("compile");
        let mut machine = Machine::new(&m);
        machine
            .push_call(m.main().expect("main"), &[])
            .expect("push");
        let mut c = Counter::default();
        machine.run(&mut c, u64::MAX).expect("run");
        assert_eq!(c.calls, 2);
        assert_eq!(c.reads, 2);
        assert_eq!(c.writes, 2);
        assert!(c.blocks >= 1);
    }

    #[test]
    fn hooks_can_skip_instructions() {
        // Skip every instruction.
        struct Skipper;
        impl Hooks for Skipper {
            fn before_inst(
                &mut self,
                site: Site,
                block: BlockId,
                idx: usize,
                _: &mut [Value],
            ) -> InstAction {
                let _ = (site, block, idx);
                InstAction::Skip
            }
        }
        let m = compile("fn main() -> int { let x: int = 5; return x; }").expect("compile");
        let mut machine = Machine::new(&m);
        machine
            .push_call(m.main().expect("main"), &[])
            .expect("push");
        let out = machine.run(&mut Skipper, u64::MAX).expect("run");
        // With the `x = 5` copy skipped, x keeps its zero initialization.
        assert_eq!(out, Outcome::Finished(Some(Value::Int(0))));
    }

    #[test]
    fn hooks_can_redirect_terminators() {
        struct ForceExit {
            exit: BlockId,
            fired: bool,
        }
        impl Hooks for ForceExit {
            fn on_term(
                &mut self,
                _: Site,
                _: BlockId,
                default_target: Option<BlockId>,
                _: &mut [Value],
            ) -> TermAction {
                if !self.fired && default_target.is_some() {
                    self.fired = true;
                    return TermAction::Goto(self.exit);
                }
                TermAction::Default
            }
        }
        // Without intervention this loops forever; redirecting the first
        // jump to the return block terminates immediately.
        let m = compile("fn main() -> int { while (true) { } return 9; }").expect("compile");
        let f = &m.funcs[0];
        let ret_block = f
            .block_ids()
            .find(|&b| matches!(f.block(b).term, Terminator::Return(Some(_))))
            .expect("return block");
        let mut machine = Machine::new(&m);
        machine
            .push_call(m.main().expect("main"), &[])
            .expect("push");
        let mut h = ForceExit {
            exit: ret_block,
            fired: false,
        };
        assert_eq!(
            machine.run(&mut h, u64::MAX).expect("run"),
            Outcome::Finished(Some(Value::Int(9)))
        );
    }

    #[test]
    fn hooks_can_rewrite_variables() {
        struct Override;
        impl Hooks for Override {
            fn on_block(&mut self, site: Site, _: BlockId, vars: &mut [Value]) {
                // Overwrite every int var named by index 0 (parameter) once.
                if site.depth == 0 && !vars.is_empty() {
                    if let Value::Int(_) = vars[0] {
                        vars[0] = Value::Int(100);
                    }
                }
            }
        }
        let m = compile("fn main(n: int) -> int { return n; }").expect("compile");
        let mut machine = Machine::new(&m);
        machine
            .push_call(m.main().expect("main"), &[Value::Int(1)])
            .expect("push");
        assert_eq!(
            machine.run(&mut Override, u64::MAX).expect("run"),
            Outcome::Finished(Some(Value::Int(100)))
        );
    }
}
