//! Runtime values and memory addresses.

use std::fmt;

/// Identifies a heap object (globals occupy the first object slots).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(pub u32);

impl ObjId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// The address of one memory cell: an object plus a cell index within it.
///
/// This is the granularity at which dependence profiling and DCA's live-out
/// capture observe memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr {
    /// The object.
    pub obj: ObjId,
    /// Cell within the object (array element or struct field).
    pub cell: u32,
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.obj, self.cell)
    }
}

/// A runtime value. All memory cells and variables hold exactly one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Non-null pointer to a heap object.
    Ptr(ObjId),
    /// The null pointer.
    Null,
}

impl Value {
    /// Interprets the value as an integer.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an `Int`; the type checker makes this
    /// unreachable for well-typed programs.
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            other => panic!("expected int, found {other:?}"),
        }
    }

    /// Interprets the value as a float.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a `Float`.
    pub fn as_float(self) -> f64 {
        match self {
            Value::Float(v) => v,
            other => panic!("expected float, found {other:?}"),
        }
    }

    /// Interprets the value as a boolean.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a `Bool`.
    pub fn as_bool(self) -> bool {
        match self {
            Value::Bool(v) => v,
            other => panic!("expected bool, found {other:?}"),
        }
    }

    /// The pointed-to object, or `None` for `Null` (panics on non-pointers).
    ///
    /// # Panics
    ///
    /// Panics if the value is not a pointer or null.
    pub fn as_ptr(self) -> Option<ObjId> {
        match self {
            Value::Ptr(o) => Some(o),
            Value::Null => None,
            other => panic!("expected pointer, found {other:?}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v:?}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Ptr(o) => write!(f, "&{o}"),
            Value::Null => write!(f, "null"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), 3);
        assert_eq!(Value::Float(2.5).as_float(), 2.5);
        assert!(Value::Bool(true).as_bool());
        assert_eq!(Value::Ptr(ObjId(7)).as_ptr(), Some(ObjId(7)));
        assert_eq!(Value::Null.as_ptr(), None);
    }

    #[test]
    #[should_panic(expected = "expected int")]
    fn as_int_panics_on_float() {
        Value::Float(1.0).as_int();
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(1.5), Value::Float(1.5));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(-2).to_string(), "-2");
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(
            Addr {
                obj: ObjId(3),
                cell: 4
            }
            .to_string(),
            "obj3[4]"
        );
    }
}
