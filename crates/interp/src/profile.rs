//! Loop execution profiling: invocation counts, iteration counts and
//! inclusive step costs per loop.
//!
//! The paper reports *sequential coverage* — the fraction of program
//! execution time spent inside each loop (Tables II and IV) — and its
//! parallelization stage selects hot loops by coverage. [`LoopProfiler`]
//! produces exactly that from one instrumented run: attach it as
//! [`Hooks`], run the program, then call [`LoopProfiler::finish`].

use crate::hooks::{Hooks, Site};
use crate::value::Value;
use dca_ir::{BlockId, FuncId, FuncView, LoopId, LoopRef, Module};
use std::collections::HashMap;

/// Aggregate statistics for one loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoopStats {
    /// Times the loop was entered from outside.
    pub invocations: u64,
    /// Header arrivals across all invocations (≈ trip count sum).
    pub iterations: u64,
    /// Steps spent inside the loop, *inclusive* of nested loops and calls.
    pub steps: u64,
}

/// Profile of a whole run.
#[derive(Debug, Clone, Default)]
pub struct ModuleProfile {
    /// Per-loop statistics.
    pub loops: HashMap<LoopRef, LoopStats>,
    /// Total steps of the profiled run.
    pub total_steps: u64,
}

impl ModuleProfile {
    /// Fraction of total execution steps spent in `l` (inclusive), in
    /// `[0, 1]`. Zero for never-executed loops or empty runs.
    pub fn coverage(&self, l: LoopRef) -> f64 {
        if self.total_steps == 0 {
            return 0.0;
        }
        self.loops
            .get(&l)
            .map(|s| s.steps as f64 / self.total_steps as f64)
            .unwrap_or(0.0)
    }

    /// Statistics for `l` (zeros if never executed).
    pub fn stats(&self, l: LoopRef) -> LoopStats {
        self.loops.get(&l).copied().unwrap_or_default()
    }
}

/// Per-function loop lookup tables, precomputed once per module.
struct FuncTable {
    /// Innermost loop of each block.
    innermost: Vec<Option<LoopId>>,
    /// Parent of each loop.
    parent: Vec<Option<LoopId>>,
    /// Header block of each loop.
    header: Vec<BlockId>,
}

struct ActiveLoop {
    /// 0-based frame depth the loop executes at.
    depth: usize,
    lref: LoopRef,
    enter_steps: u64,
}

/// A [`Hooks`] implementation that measures per-loop costs.
pub struct LoopProfiler {
    tables: Vec<FuncTable>,
    active: Vec<ActiveLoop>,
    stats: HashMap<LoopRef, LoopStats>,
    last_steps: u64,
}

impl LoopProfiler {
    /// Precomputes loop tables for every function of `module`.
    pub fn new(module: &Module) -> Self {
        let mut tables = Vec::with_capacity(module.funcs.len());
        for i in 0..module.funcs.len() {
            let view = FuncView::new(module, FuncId(i as u32));
            let nloops = view.loops.len();
            let mut innermost = vec![None; view.func.blocks.len()];
            for b in view.func.block_ids() {
                innermost[b.index()] = view.loops.innermost(b);
            }
            let mut parent = vec![None; nloops];
            let mut header = vec![BlockId(0); nloops];
            for l in view.loops.iter() {
                parent[l.id.index()] = l.parent;
                header[l.id.index()] = l.header;
            }
            tables.push(FuncTable {
                innermost,
                parent,
                header,
            });
        }
        LoopProfiler {
            tables,
            active: Vec::new(),
            stats: HashMap::new(),
            last_steps: 0,
        }
    }

    /// Consumes the profiler after a run, producing the profile.
    pub fn finish(mut self, total_steps: u64) -> ModuleProfile {
        // Close any loops still active (e.g. the program trapped).
        while let Some(top) = self.active.pop() {
            let entry = self.stats.entry(top.lref).or_default();
            entry.steps += total_steps.saturating_sub(top.enter_steps);
        }
        ModuleProfile {
            loops: self.stats,
            total_steps,
        }
    }

    /// The loop chain (innermost-first) containing `block` of `func`.
    fn chain(&self, func: FuncId, block: BlockId) -> Vec<LoopId> {
        let t = &self.tables[func.index()];
        let mut out = Vec::new();
        let mut cur = t.innermost[block.index()];
        while let Some(l) = cur {
            out.push(l);
            cur = t.parent[l.index()];
        }
        out
    }

    fn close_down_to(&mut self, keep: usize, now: u64) {
        while self.active.len() > keep {
            let top = self.active.pop().expect("len checked");
            let entry = self.stats.entry(top.lref).or_default();
            entry.steps += now.saturating_sub(top.enter_steps);
        }
    }
}

impl Hooks for LoopProfiler {
    fn on_block(&mut self, site: Site, block: BlockId, _vars: &mut [Value]) {
        self.last_steps = site.steps;
        // Loops of this frame that should now be active: the chain of the
        // new block, outermost-first.
        let mut chain = self.chain(site.func, block);
        chain.reverse();
        // Find how much of the prefix (entries at this depth, same func)
        // already matches.
        let base = self
            .active
            .iter()
            .position(|a| a.depth >= site.depth)
            .unwrap_or(self.active.len());
        let mut matched = 0;
        while matched < chain.len() {
            let idx = base + matched;
            match self.active.get(idx) {
                Some(a)
                    if a.depth == site.depth
                        && a.lref.func == site.func
                        && a.lref.loop_id == chain[matched] =>
                {
                    matched += 1;
                }
                _ => break,
            }
        }
        // Everything above the matched prefix has been exited.
        self.close_down_to(base + matched, site.steps);
        // Enter the rest of the chain.
        for &l in &chain[matched..] {
            let lref = LoopRef {
                func: site.func,
                loop_id: l,
            };
            let entry = self.stats.entry(lref).or_default();
            entry.invocations += 1;
            entry.iterations += 1;
            self.active.push(ActiveLoop {
                depth: site.depth,
                lref,
                enter_steps: site.steps,
            });
        }
        // Header re-arrival of the innermost active loop = new iteration.
        if matched > 0 && matched == chain.len() {
            let t = &self.tables[site.func.index()];
            let inner = chain[matched - 1];
            if t.header[inner.index()] == block {
                let lref = LoopRef {
                    func: site.func,
                    loop_id: inner,
                };
                self.stats.entry(lref).or_default().iterations += 1;
            }
        }
    }

    fn on_return(&mut self, site: Site, _func: FuncId) {
        // Close loops belonging to the returning frame (depth == site.depth)
        // and anything deeper.
        let keep = self
            .active
            .iter()
            .position(|a| a.depth >= site.depth)
            .unwrap_or(self.active.len());
        self.close_down_to(keep, site.steps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use dca_ir::compile;

    fn profile(src: &str) -> (ModuleProfile, dca_ir::Module) {
        let m = compile(src).expect("compile");
        let mut machine = Machine::new(&m);
        machine
            .push_call(m.main().expect("main"), &[])
            .expect("push");
        let mut p = LoopProfiler::new(&m);
        machine.run(&mut p, u64::MAX).expect("run");
        (p.finish(machine.steps()), m)
    }

    fn loop_by_tag(m: &dca_ir::Module, tag: &str) -> LoopRef {
        for (lref, t) in dca_ir::all_loops(m) {
            if t.as_deref() == Some(tag) {
                return lref;
            }
        }
        panic!("no loop tagged @{tag}");
    }

    #[test]
    fn single_loop_counts() {
        let (p, m) = profile(
            "fn main() { let s: int = 0; \
             @l: for (let i: int = 0; i < 10; i = i + 1) { s = s + i; } }",
        );
        let stats = p.stats(loop_by_tag(&m, "l"));
        assert_eq!(stats.invocations, 1);
        // 10 executed iterations + the final failing check.
        assert_eq!(stats.iterations, 11);
        assert!(stats.steps > 0);
    }

    #[test]
    fn nested_loops_inclusive_attribution() {
        let (p, m) = profile(
            "fn main() { let s: int = 0; \
             @outer: for (let i: int = 0; i < 4; i = i + 1) { \
               @inner: for (let j: int = 0; j < 4; j = j + 1) { s = s + 1; } } }",
        );
        let outer = p.stats(loop_by_tag(&m, "outer"));
        let inner = p.stats(loop_by_tag(&m, "inner"));
        assert_eq!(outer.invocations, 1);
        assert_eq!(inner.invocations, 4);
        assert!(
            outer.steps > inner.steps,
            "outer ({}) must include inner ({})",
            outer.steps,
            inner.steps
        );
    }

    #[test]
    fn coverage_is_a_fraction_of_total() {
        let (p, m) = profile(
            "fn main() { let s: int = 0; \
             @hot: for (let i: int = 0; i < 200; i = i + 1) { s = s + i; } \
             s = s * 2; }",
        );
        let cov = p.coverage(loop_by_tag(&m, "hot"));
        assert!(cov > 0.8 && cov <= 1.0, "coverage {cov}");
    }

    #[test]
    fn loops_in_called_functions_profiled() {
        let (p, m) = profile(
            "fn work(n: int) -> int { let s: int = 0; \
             @w: for (let i: int = 0; i < n; i = i + 1) { s = s + i; } return s; }\n\
             fn main() { work(5); work(7); }",
        );
        let w = p.stats(loop_by_tag(&m, "w"));
        assert_eq!(w.invocations, 2);
        assert_eq!(w.iterations, 5 + 1 + 7 + 1);
    }

    #[test]
    fn call_inside_loop_attributes_to_loop() {
        let (p, m) = profile(
            "fn heavy() -> int { let s: int = 0; \
             for (let i: int = 0; i < 50; i = i + 1) { s = s + i; } return s; }\n\
             fn main() { let t: int = 0; \
             @caller: for (let k: int = 0; k < 3; k = k + 1) { t = t + heavy(); } }",
        );
        let caller = p.stats(loop_by_tag(&m, "caller"));
        // The callee's ~50-iteration loop runs inside; inclusive cost must
        // dwarf the caller's own 3 iterations of bookkeeping.
        assert!(caller.steps > 300, "caller steps = {}", caller.steps);
    }

    #[test]
    fn unexecuted_loop_has_zero_stats() {
        let (p, m) = profile(
            "fn dead() { @never: while (false) { } }\n\
             fn main() { }",
        );
        let never = p.stats(loop_by_tag(&m, "never"));
        assert_eq!(never, LoopStats::default());
        assert_eq!(p.coverage(loop_by_tag(&m, "never")), 0.0);
    }
}
