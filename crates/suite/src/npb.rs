//! The NPB-like programs (see crate docs and DESIGN.md).

use crate::{ExpertPlan, Group, SuiteProgram};

static EP: SuiteProgram = SuiteProgram {
    name: "ep",
    group: Group::Npb,
    source: include_str!("../programs/npb/ep.mc"),
    default_args: &[144, 60],
    test_args: &[10, 12],
    expert: ExpertPlan {
        parallel_tags: &["zero_q", "blocks", "tally", "norm", "sumq", "resid"],
        profitable_tags: &["blocks"],
        extra_parallel_fraction: 0.0,
        paper: None,
    },
};

static CG: SuiteProgram = SuiteProgram {
    name: "cg",
    group: Group::Npb,
    source: include_str!("../programs/npb/cg.mc"),
    default_args: &[96, 6],
    test_args: &[24, 3],
    expert: ExpertPlan {
        parallel_tags: &[
            "init_x", "init_cols", "matvec_outer", "matvec_inner", "dot_rr",
            "dot_rz", "axpy_x", "update_p", "resid_max", "resid_hist",
        ],
        profitable_tags: &["matvec_outer", "dot_rr", "dot_rz", "axpy_x", "update_p"],
        extra_parallel_fraction: 0.5,
        paper: None,
    },
};

static IS: SuiteProgram = SuiteProgram {
    name: "is",
    group: Group::Npb,
    source: include_str!("../programs/npb/is.mc"),
    default_args: &[160, 20],
    test_args: &[64, 8],
    expert: ExpertPlan {
        parallel_tags: &[
            "gen_keys", "count", "rank_hist", "scatter", "rank_scan", "verify_sum",
        ],
        profitable_tags: &["count", "rank_hist", "gen_keys", "verify_sum"],
        extra_parallel_fraction: 0.8,
        paper: None,
    },
};

static FT: SuiteProgram = SuiteProgram {
    name: "ft",
    group: Group::Npb,
    source: include_str!("../programs/npb/ft.mc"),
    default_args: &[256, 8],
    test_args: &[64, 6],
    expert: ExpertPlan {
        parallel_tags: &[
            "init_u", "copy_w", "bitrev", "revbits", "butterfly", "window", "evolve",
            "scale", "energy", "checksum_gather", "scatter_re", "scatter_im", "peak_bin",
        ],
        profitable_tags: &["butterfly", "init_u", "copy_w"],
        extra_parallel_fraction: 0.85,
        paper: None,
    },
};

static MG: SuiteProgram = SuiteProgram {
    name: "mg",
    group: Group::Npb,
    source: include_str!("../programs/npb/mg.mc"),
    default_args: &[256, 6, 0],
    test_args: &[64, 3, 0],
    expert: ExpertPlan {
        parallel_tags: &[
            "init_v", "init_r", "smooth", "residual", "restrict_g", "prolong",
            "apply_bc", "norm_sum", "debug_dump",
        ],
        profitable_tags: &["smooth", "residual", "restrict_g", "prolong", "norm_sum"],
        extra_parallel_fraction: 0.3,
        paper: None,
    },
};

static DC: SuiteProgram = SuiteProgram {
    name: "dc",
    group: Group::Npb,
    source: include_str!("../programs/npb/dc.mc"),
    default_args: &[224, 0],
    test_args: &[64, 0],
    expert: ExpertPlan {
        parallel_tags: &[
            "gen_tuples", "dim_map", "group_count", "agg_sum", "tuple_scatter",
            "mask_gather", "spare_dim",
        ],
        profitable_tags: &[],
        extra_parallel_fraction: 0.85,
        paper: None,
    },
};

static BT: SuiteProgram = SuiteProgram {
    name: "bt",
    group: Group::Npb,
    source: include_str!("../programs/npb/bt.mc"),
    default_args: &[192, 48],
    test_args: &[48, 16],
    expert: ExpertPlan {
        parallel_tags: &[
            "init_u", "init_exact", "init_rhs", "line_table", "xflux", "yflux",
            "zflux", "flux_weight", "rhs_update", "dissip_x", "dissip_y", "dissip_z",
            "xsolve_lines", "ysolve_lines", "yscale", "zsolve_lines", "bc_faces",
            "interior", "smooth_l", "add_update", "copy_back", "rhs_norm", "u_norm",
        ],
        profitable_tags: &[
            "xflux", "yflux", "zflux", "flux_weight", "rhs_update", "dissip_x",
            "dissip_y", "dissip_z", "xsolve_lines", "ysolve_lines", "zsolve_lines",
            "add_update", "copy_back", "rhs_norm", "u_norm", "init_u", "init_exact",
            "init_rhs",
        ],
        extra_parallel_fraction: 0.0,
        paper: None,
    },
};

static SP: SuiteProgram = SuiteProgram {
    name: "sp",
    group: Group::Npb,
    source: include_str!("../programs/npb/sp.mc"),
    default_args: &[224, 4],
    test_args: &[48, 2],
    expert: ExpertPlan {
        parallel_tags: &[
            "init_u", "init_rhs", "calc_us", "calc_vs", "calc_ws", "calc_speed",
            "xrhs", "yrhs", "zrhs", "speed_rhs", "energy_rhs", "xfact", "yfact",
            "zfact", "xback", "yback", "zback", "add", "txinvr", "tzetar", "pinvr",
            "ninvr", "smooth_u", "norm", "u_norm",
        ],
        profitable_tags: &[
            "calc_us", "calc_vs", "calc_ws", "calc_speed", "xrhs", "yrhs", "zrhs",
            "speed_rhs", "energy_rhs", "xfact", "yfact", "zfact", "add", "txinvr",
            "tzetar", "pinvr", "ninvr", "smooth_u", "norm", "u_norm", "init_u",
            "init_rhs",
        ],
        extra_parallel_fraction: 0.0,
        paper: None,
    },
};

static LU: SuiteProgram = SuiteProgram {
    name: "lu",
    group: Group::Npb,
    source: include_str!("../programs/npb/lu.mc"),
    default_args: &[160, 12],
    test_args: &[48, 3],
    expert: ExpertPlan {
        parallel_tags: &[
            "init_u", "init_b", "setbv", "setiv", "erhs1", "erhs2", "flux_x",
            "flux_y", "flux_z", "dissip", "jacld", "jacu", "ssor_iter", "surface",
            "pintgr2", "l2norm", "pintgr1", "scale",
        ],
        profitable_tags: &["erhs1", "erhs2", "flux_x", "flux_y", "flux_z", "dissip"],
        extra_parallel_fraction: 0.85,
        paper: None,
    },
};

static UA: SuiteProgram = SuiteProgram {
    name: "ua",
    group: Group::Npb,
    source: include_str!("../programs/npb/ua.mc"),
    default_args: &[224, 3],
    test_args: &[64, 2],
    expert: ExpertPlan {
        parallel_tags: &[
            "mk_conn", "mk_back", "init_x", "init_y", "init_z", "mass_map",
            "res_zero", "tmp_zero", "gather_x", "scatter_m", "diffuse", "laplace",
            "transfer", "adapt_flag", "coarsen", "bucket_scan", "refine_x",
            "refine_y", "refine_z", "mortar1", "mortar2", "precond", "smooth1",
            "smooth2", "project", "interp", "advance", "energy", "peak_res",
        ],
        profitable_tags: &[
            "mk_conn", "mk_back", "init_x", "init_y", "init_z", "res_zero",
            "tmp_zero", "gather_x", "scatter_m", "diffuse", "laplace", "transfer",
            "adapt_flag", "refine_x", "refine_y", "refine_z", "mortar1", "mortar2",
            "precond", "smooth1", "smooth2", "project", "interp", "advance",
            "energy", "peak_res", "mass_map", "coarsen",
        ],
        extra_parallel_fraction: 0.35,
        paper: None,
    },
};

static PROGRAMS: &[&SuiteProgram] = &[&BT, &CG, &DC, &EP, &FT, &IS, &LU, &MG, &SP, &UA];

/// The NPB-like programs in suite order.
pub fn programs() -> &'static [&'static SuiteProgram] {
    PROGRAMS
}
