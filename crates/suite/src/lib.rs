//! The benchmark suite of the DCA reproduction.
//!
//! Two groups, mirroring the paper's evaluation (§V-A):
//!
//! * **NPB-like** ([`npb`]): ten mini-C programs named after the NAS
//!   Parallel Benchmarks (BT, CG, DC, EP, FT, IS, LU, MG, SP, UA). Each
//!   reproduces the *loop population* of its namesake — the mix of loop
//!   idioms each detection technique can and cannot handle — at a scale
//!   an interpreter can execute (see DESIGN.md for the substitution
//!   argument).
//! * **PLDS** ([`plds`]): fourteen pointer-linked-data-structure programs
//!   re-implementing the loop-containing functions of Table II (mcf,
//!   twolf, ks, otter, em3d, mst, bh, perimeter, treeadd, hash, BFS,
//!   ising, spmatmat, water).
//!
//! Every loop in every program carries a source tag (`@name:`); the
//! expert annotations ([`expert`]) reference those tags to encode the
//! ground truth (which loops are order-insensitive) and the profitability
//! selection the paper's figures use.

#![warn(missing_docs)]

pub mod expert;
pub mod npb;
pub mod plds;

pub use expert::ExpertPlan;

use dca_interp::Value;
use dca_ir::{LoopRef, Module};

/// Which group a program belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Group {
    /// NPB-like array-based program.
    Npb,
    /// Pointer-linked data structure program.
    Plds,
}

/// One benchmark program.
#[derive(Debug, Clone)]
pub struct SuiteProgram {
    /// Short name (`"ep"`, `"bfs"`, ...).
    pub name: &'static str,
    /// Group.
    pub group: Group,
    /// mini-C source text.
    pub source: &'static str,
    /// Workload arguments for evaluation runs (the paper's class-B-like
    /// setting, scaled to interpreter speed).
    pub default_args: &'static [i64],
    /// Smaller arguments for unit/integration tests.
    pub test_args: &'static [i64],
    /// Expert annotations.
    pub expert: ExpertPlan,
}

impl SuiteProgram {
    /// Compiles the program to IR.
    ///
    /// # Panics
    ///
    /// Panics if the shipped source fails to compile — that is a bug in
    /// the suite, covered by tests.
    pub fn module(&self) -> Module {
        dca_ir::compile(self.source)
            .unwrap_or_else(|e| panic!("suite program `{}` failed to compile: {e}", self.name))
    }

    /// The evaluation workload as interpreter values.
    pub fn args(&self) -> Vec<Value> {
        self.default_args.iter().map(|&v| Value::Int(v)).collect()
    }

    /// The test workload as interpreter values.
    pub fn targs(&self) -> Vec<Value> {
        self.test_args.iter().map(|&v| Value::Int(v)).collect()
    }

    /// Resolves a loop tag to its [`LoopRef`] in a compiled module.
    pub fn loop_by_tag(&self, module: &Module, tag: &str) -> Option<LoopRef> {
        dca_ir::all_loops(module)
            .into_iter()
            .find(|(_, t)| t.as_deref() == Some(tag))
            .map(|(l, _)| l)
    }
}

/// All programs, NPB first.
pub fn all_programs() -> Vec<&'static SuiteProgram> {
    let mut v: Vec<&'static SuiteProgram> = npb::programs().to_vec();
    v.extend(plds::programs());
    v
}

/// Looks up a program by name across both groups.
pub fn by_name(name: &str) -> Option<&'static SuiteProgram> {
    all_programs().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_program_compiles_and_has_unique_tags() {
        for p in all_programs() {
            let m = p.module();
            let loops = dca_ir::all_loops(&m);
            assert!(!loops.is_empty(), "{} has no loops", p.name);
            let mut tags: Vec<&str> = loops.iter().filter_map(|(_, t)| t.as_deref()).collect();
            let before = tags.len();
            assert_eq!(before, loops.len(), "{}: every loop must be tagged", p.name);
            tags.sort_unstable();
            tags.dedup();
            assert_eq!(tags.len(), before, "{}: duplicate tags", p.name);
        }
    }

    #[test]
    fn every_program_runs_on_test_workload() {
        for p in all_programs() {
            let m = p.module();
            let r = dca_interp::run_program(&m, &p.targs())
                .unwrap_or_else(|e| panic!("{} trapped: {e}", p.name));
            assert!(
                !r.output.is_empty(),
                "{} must print a verification digest",
                p.name
            );
        }
    }

    #[test]
    fn expert_tags_exist() {
        for p in all_programs() {
            let m = p.module();
            for tag in p
                .expert
                .parallel_tags
                .iter()
                .chain(p.expert.profitable_tags)
            {
                assert!(
                    p.loop_by_tag(&m, tag).is_some(),
                    "{}: expert tag @{tag} not found",
                    p.name
                );
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("ep").is_some());
        assert!(by_name("no-such-benchmark").is_none());
    }
}
