//! The PLDS programs of Table II (see crate docs and DESIGN.md).

use crate::expert::PaperRow;
use crate::{ExpertPlan, Group, SuiteProgram};

static MCF: SuiteProgram = SuiteProgram {
    name: "mcf",
    group: Group::Plds,
    source: include_str!("../programs/plds/mcf.mc"),
    default_args: &[384, 0],
    test_args: &[48, 0],
    expert: ExpertPlan {
        parallel_tags: &["build", "refresh", "checksum"],
        profitable_tags: &["refresh"],
        extra_parallel_fraction: 0.0,
        paper: Some(PaperRow {
            origin: "SPEC CPU2006",
            function: "refresh_potential",
            coverage_pct: 30.0,
            loop_speedup: Some(2.2),
            overall_speedup: None,
            technique: "DSWP variant 1",
        }),
    },
};

static TWOLF: SuiteProgram = SuiteProgram {
    name: "twolf",
    group: Group::Plds,
    source: include_str!("../programs/plds/twolf.mc"),
    default_args: &[48, 12],
    test_args: &[12, 6],
    expert: ExpertPlan {
        parallel_tags: &["build_cells", "build_terms", "dbox_cells", "dbox_terms"],
        profitable_tags: &["dbox_cells"],
        extra_parallel_fraction: 0.0,
        paper: Some(PaperRow {
            origin: "SPEC CPU2000",
            function: "new_dbox_a",
            coverage_pct: 30.0,
            loop_speedup: Some(1.5),
            overall_speedup: None,
            technique: "DSWP variant 2",
        }),
    },
};

static KS: SuiteProgram = SuiteProgram {
    name: "ks",
    group: Group::Plds,
    source: include_str!("../programs/plds/ks.mc"),
    default_args: &[160, 10],
    test_args: &[32, 4],
    expert: ExpertPlan {
        parallel_tags: &["build", "find_max_gp", "swap_pass"],
        // kl_passes erodes gains: pass order matters (sequential).
        profitable_tags: &["find_max_gp"],
        extra_parallel_fraction: 0.0,
        paper: Some(PaperRow {
            origin: "PtrDist",
            function: "FindMaxGpAndSwap",
            coverage_pct: 99.0,
            loop_speedup: Some(1.5),
            overall_speedup: None,
            technique: "DSWP variant 1",
        }),
    },
};

static OTTER: SuiteProgram = SuiteProgram {
    name: "otter",
    group: Group::Plds,
    source: include_str!("../programs/plds/otter.mc"),
    default_args: &[192, 10],
    test_args: &[32, 4],
    expert: ExpertPlan {
        parallel_tags: &["build", "prove", "find_lightest", "mark"],
        profitable_tags: &["find_lightest"],
        extra_parallel_fraction: 0.0,
        paper: Some(PaperRow {
            origin: "FOSS",
            function: "find_lightest_geo_child",
            coverage_pct: 15.0,
            loop_speedup: Some(2.5),
            overall_speedup: None,
            technique: "DSWP variant 2",
        }),
    },
};

static EM3D: SuiteProgram = SuiteProgram {
    name: "em3d",
    group: Group::Plds,
    source: include_str!("../programs/plds/em3d.mc"),
    default_args: &[192, 8],
    test_args: &[32, 3],
    expert: ExpertPlan {
        parallel_tags: &["wire", "sim", "compute_nodes", "compute_h", "esum"],
        profitable_tags: &["compute_nodes", "compute_h"],
        extra_parallel_fraction: 0.0,
        paper: Some(PaperRow {
            origin: "Olden",
            function: "compute_nodes",
            coverage_pct: 100.0,
            loop_speedup: Some(2.0),
            overall_speedup: None,
            technique: "DSWP variant 1",
        }),
    },
};

static MST: SuiteProgram = SuiteProgram {
    name: "mst",
    group: Group::Plds,
    source: include_str!("../programs/plds/mst.mc"),
    default_args: &[56, 6],
    test_args: &[16, 4],
    expert: ExpertPlan {
        parallel_tags: &["build_e", "grow", "blue_rule", "edge_scan", "admit"],
        profitable_tags: &["blue_rule"],
        extra_parallel_fraction: 0.0,
        paper: Some(PaperRow {
            origin: "Olden",
            function: "BlueRule",
            coverage_pct: 100.0,
            loop_speedup: Some(1.5),
            overall_speedup: None,
            technique: "DSWP variant 1",
        }),
    },
};

static TREEADD: SuiteProgram = SuiteProgram {
    name: "treeadd",
    group: Group::Plds,
    source: include_str!("../programs/plds/treeadd.mc"),
    default_args: &[9, 4],
    test_args: &[5, 2],
    expert: ExpertPlan {
        parallel_tags: &["repeat", "tree_add"],
        profitable_tags: &["tree_add"],
        extra_parallel_fraction: 0.0,
        paper: Some(PaperRow {
            origin: "Olden",
            function: "TreeAdd",
            coverage_pct: 100.0,
            loop_speedup: None,
            overall_speedup: Some(7.0),
            technique: "Partitioning",
        }),
    },
};

static BH: SuiteProgram = SuiteProgram {
    name: "bh",
    group: Group::Plds,
    source: include_str!("../programs/plds/bh.mc"),
    default_args: &[160, 8],
    test_args: &[24, 5],
    expert: ExpertPlan {
        parallel_tags: &["build_bodies", "walksub", "accsum"],
        profitable_tags: &["walksub"],
        extra_parallel_fraction: 0.0,
        paper: Some(PaperRow {
            origin: "Olden",
            function: "walksub",
            coverage_pct: 100.0,
            loop_speedup: Some(2.75),
            overall_speedup: None,
            technique: "DSWP variant 1",
        }),
    },
};

static PERIMETER: SuiteProgram = SuiteProgram {
    name: "perimeter",
    group: Group::Plds,
    source: include_str!("../programs/plds/perimeter.mc"),
    default_args: &[6, 4],
    test_args: &[4, 2],
    expert: ExpertPlan {
        parallel_tags: &["repeat", "perimeter"],
        profitable_tags: &["perimeter"],
        extra_parallel_fraction: 0.0,
        paper: Some(PaperRow {
            origin: "Olden",
            function: "perimeter",
            coverage_pct: 100.0,
            loop_speedup: Some(2.25),
            overall_speedup: None,
            technique: "DSWP variant 1",
        }),
    },
};

static HASH: SuiteProgram = SuiteProgram {
    name: "hash",
    group: Group::Plds,
    source: include_str!("../programs/plds/hash.mc"),
    default_args: &[192, 384],
    test_args: &[48, 64],
    expert: ExpertPlan {
        parallel_tags: &["fill", "probe"],
        profitable_tags: &["probe"],
        extra_parallel_fraction: 0.0,
        paper: Some(PaperRow {
            origin: "Shootout",
            function: "ht_find",
            coverage_pct: 50.0,
            loop_speedup: None,
            overall_speedup: Some(4.0),
            technique: "Partitioning",
        }),
    },
};

static BFS: SuiteProgram = SuiteProgram {
    name: "bfs",
    group: Group::Plds,
    source: include_str!("../programs/plds/bfs.mc"),
    default_args: &[1536, 5],
    test_args: &[48, 3],
    expert: ExpertPlan {
        parallel_tags: &[
            "build_adj",
            "add_edges",
            "init_dist",
            "sources",
            "reset_dist",
            "top_down",
            "neighbors",
            "dist_sum",
        ],
        profitable_tags: &["top_down", "build_adj", "reset_dist", "dist_sum"],
        extra_parallel_fraction: 0.0,
        paper: Some(PaperRow {
            origin: "Lonestar",
            function: "BFS",
            coverage_pct: 99.0,
            loop_speedup: None,
            overall_speedup: Some(21.0),
            technique: "Galois",
        }),
    },
};

static ISING: SuiteProgram = SuiteProgram {
    name: "ising",
    group: Group::Plds,
    source: include_str!("../programs/plds/ising.mc"),
    default_args: &[256, 6],
    test_args: &[48, 3],
    expert: ExpertPlan {
        parallel_tags: &["sweeps_loop", "half_sweep", "mag_sum"],
        profitable_tags: &["half_sweep", "mag_sum"],
        extra_parallel_fraction: 0.0,
        paper: Some(PaperRow {
            origin: "community",
            function: "main",
            coverage_pct: 95.0,
            loop_speedup: None,
            overall_speedup: Some(6.0),
            technique: "ASC",
        }),
    },
};

static SPMATMAT: SuiteProgram = SuiteProgram {
    name: "spmatmat",
    group: Group::Plds,
    source: include_str!("../programs/plds/spmatmat.mc"),
    default_args: &[96, 144],
    test_args: &[24, 16],
    expert: ExpertPlan {
        parallel_tags: &[
            "build_rows",
            "build_elems",
            "init_dense",
            "spmm_rows",
            "spmm_cols",
            "spmm_dot",
            "check",
        ],
        profitable_tags: &["spmm_rows"],
        extra_parallel_fraction: 0.0,
        paper: Some(PaperRow {
            origin: "SPARK00",
            function: "main",
            coverage_pct: 89.0,
            loop_speedup: None,
            overall_speedup: Some(4.0),
            technique: "APOLLO",
        }),
    },
};

static WATER: SuiteProgram = SuiteProgram {
    name: "water",
    group: Group::Plds,
    source: include_str!("../programs/plds/water.mc"),
    default_args: &[64, 4],
    test_args: &[16, 2],
    expert: ExpertPlan {
        parallel_tags: &["timestep", "interf", "pairs", "advance", "relax", "esum"],
        profitable_tags: &["interf"],
        extra_parallel_fraction: 0.0,
        paper: Some(PaperRow {
            origin: "SPLASH3",
            function: "INTERF",
            coverage_pct: 63.0,
            loop_speedup: None,
            overall_speedup: Some(2.0),
            technique: "OPENMP",
        }),
    },
};

static PROGRAMS: &[&SuiteProgram] = &[
    &MCF, &TWOLF, &KS, &OTTER, &EM3D, &MST, &BH, &PERIMETER, &TREEADD, &HASH, &BFS, &ISING,
    &SPMATMAT, &WATER,
];

/// The PLDS programs in Table II order.
pub fn programs() -> &'static [&'static SuiteProgram] {
    PROGRAMS
}
