//! Expert annotations: the ground truth and profitability selections the
//! paper's evaluation leans on.
//!
//! * `parallel_tags` encodes the semi-manual expert analysis of §V-D:
//!   which loops are genuinely order-insensitive (commutative), used to
//!   count DCA's false positives/negatives in Table IV.
//! * `profitable_tags` encodes the expert profitability selection of
//!   §V-C2 (profitability analysis is out of DCA's scope, so the paper
//!   parallelizes the loops deemed profitable in the expert NPB
//!   implementation).
//! * `extra_parallel_fraction` models the *beyond-loop* parallelism a full
//!   expert parallelization exploits (Fig. 7): whole parallel sections,
//!   pipelining and restructuring outside single-loop data parallelism.
//! * `paper` carries the literature metadata of Table II for PLDS
//!   programs.

/// Literature metadata for a PLDS entry (Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Benchmark origin (suite).
    pub origin: &'static str,
    /// The loop-containing function in the original program.
    pub function: &'static str,
    /// Sequential coverage reported in the paper (%).
    pub coverage_pct: f64,
    /// Potential loop-level speedup reported in the literature, if any.
    pub loop_speedup: Option<f64>,
    /// Whole-program speedup reported in the literature, if any.
    pub overall_speedup: Option<f64>,
    /// The expert/manual technique that exploited it.
    pub technique: &'static str,
}

/// Expert annotations for one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpertPlan {
    /// Tags of loops an expert classifies as order-insensitive
    /// (the ground truth for false-positive/negative accounting).
    pub parallel_tags: &'static [&'static str],
    /// Tags the expert selects for parallel execution (profitable,
    /// outermost loops).
    pub profitable_tags: &'static [&'static str],
    /// Fraction of the *residual* (non-loop-parallel) execution a full
    /// expert parallelization additionally covers (Fig. 7).
    pub extra_parallel_fraction: f64,
    /// Table II metadata (PLDS programs only).
    pub paper: Option<PaperRow>,
}

impl ExpertPlan {
    /// A plan with no annotations.
    pub const fn empty() -> Self {
        ExpertPlan {
            parallel_tags: &[],
            profitable_tags: &[],
            extra_parallel_fraction: 0.0,
            paper: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let p = ExpertPlan::empty();
        assert!(p.parallel_tags.is_empty());
        assert!(p.profitable_tags.is_empty());
        assert_eq!(p.extra_parallel_fraction, 0.0);
        assert!(p.paper.is_none());
    }
}
