//! DCA as a [`Detector`], so the evaluation tables can iterate over all six
//! techniques uniformly.

use crate::detect::{DetectionReport, Detector, Technique};
use dca_core::{Dca, DcaConfig};
use dca_interp::Value;
use dca_ir::Module;

/// Wraps the DCA engine behind the common detector interface: a loop is
/// "parallelizable" when DCA's verdict is commutative.
#[derive(Debug, Clone, Default)]
pub struct DcaDetector {
    config: DcaConfig,
}

impl DcaDetector {
    /// A detector with a specific DCA configuration.
    pub fn new(config: DcaConfig) -> Self {
        DcaDetector { config }
    }
}

impl Detector for DcaDetector {
    fn technique(&self) -> Technique {
        Technique::Dca
    }

    fn detect(&self, module: &Module, args: &[Value]) -> DetectionReport {
        let mut report = DetectionReport::default();
        match Dca::new(self.config.clone()).analyze(module, args) {
            Ok(dca_report) => {
                for r in dca_report.iter() {
                    report.set(r.lref, r.verdict.is_commutative(), r.verdict.to_string());
                }
            }
            Err(e) => {
                // No entry point: report every loop as undetected.
                for (lref, _) in dca_ir::all_loops(module) {
                    report.set(lref, false, e.to_string());
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dca_detects_what_dependence_tools_cannot() {
        let src = "struct N { v: int, next: *N }\n\
             fn main() -> int { let head: *N = null; \
             for (let i: int = 0; i < 8; i = i + 1) { \
               let n: *N = new N; n.v = i; n.next = head; head = n; } \
             let p: *N = head; \
             @walk: while (p != null) { p.v = p.v + 1; p = p.next; } \
             let s: int = 0; let q: *N = head; \
             while (q != null) { s = s + q.v; q = q.next; } return s; }";
        let m = dca_ir::compile(src).expect("compile");
        let dca = DcaDetector::new(DcaConfig::fast());
        let dep = crate::dynamics::DependenceProfiling;
        let dca_report = dca.detect(&m, &[]);
        let dep_report = dep.detect(&m, &[]);
        let walk = dca_ir::all_loops(&m)
            .into_iter()
            .find(|(_, t)| t.as_deref() == Some("walk"))
            .expect("tagged")
            .0;
        assert!(dca_report.is_parallel(walk));
        assert!(!dep_report.is_parallel(walk));
        assert_eq!(dca.technique(), Technique::Dca);
    }
}
