//! The three static baselines: Idioms, Polly-style and ICC-style
//! detection (paper §V-A).
//!
//! Each models the published decision procedure of the corresponding tool
//! at the fidelity the paper's comparison needs (what *class of loops* the
//! tool can prove parallel), configured as in the paper: profitability
//! heuristics off during detection.

use crate::detect::{DetectionReport, Detector, Technique};
use dca_analysis::{test_loop, AffineLoopInfo, EffectMap, IteratorSlice, Liveness, ReductionInfo};
use dca_interp::Value;
use dca_ir::{FuncId, FuncView, Inst, LoopRef, Module};

fn loop_contexts<'a>(
    module: &'a Module,
    view: &'a FuncView<'a>,
    live: &Liveness,
    effects: &EffectMap,
) -> Vec<(LoopRef, AffineLoopInfo, ReductionInfo, bool)> {
    let mut out = Vec::new();
    for l in view.loops.iter() {
        let slice = IteratorSlice::compute_with(view, l, effects);
        let info = AffineLoopInfo::compute(view, live, l);
        let red = ReductionInfo::compute(view, live, l, &slice.slice_vars);
        // Impure calls: any callee that touches memory or I/O.
        let mut impure_call = false;
        let mut any_call = false;
        for &b in &l.blocks {
            for inst in &view.func.block(b).insts {
                if let Inst::Call { func, .. } = inst {
                    any_call = true;
                    if !effects.effects(*func).is_pure() {
                        impure_call = true;
                    }
                }
            }
        }
        let _ = any_call;
        out.push((
            LoopRef {
                func: view.id,
                loop_id: l.id,
            },
            info,
            red,
            impure_call,
        ));
    }
    let _ = module;
    out
}

fn for_each_loop(
    module: &Module,
    mut f: impl FnMut(LoopRef, &AffineLoopInfo, &ReductionInfo, bool) -> (bool, String),
) -> DetectionReport {
    let effects = EffectMap::new(module);
    let mut report = DetectionReport::default();
    for i in 0..module.funcs.len() {
        let view = FuncView::new(module, FuncId(i as u32));
        if view.loops.is_empty() {
            continue;
        }
        let live = Liveness::new(&view);
        for (lref, info, red, impure_call) in loop_contexts(module, &view, &live, &effects) {
            let (parallel, reason) = f(lref, &info, &red, impure_call);
            report.set(lref, parallel, reason);
        }
    }
    report
}

/// Polly-style polyhedral detection: the loop must be a SCoP — affine
/// bounds and subscripts over induction variables and loop-invariant
/// parameters, no calls, no pointer chasing, no irregular exits — and the
/// ZIV/SIV/GCD tests must prove independence. No reduction support during
/// detection (matching the paper's `-polly-process-unprofitable`
/// configuration, which widens *profitability*, not the SCoP model).
#[derive(Debug, Clone, Copy, Default)]
pub struct PollyStyle;

impl Detector for PollyStyle {
    fn technique(&self) -> Technique {
        Technique::Polly
    }

    fn detect(&self, module: &Module, _args: &[Value]) -> DetectionReport {
        for_each_loop(module, |_lref, info, red, _impure| {
            if info.has_io {
                return (false, "I/O in loop".into());
            }
            if info.has_calls {
                return (false, "calls break the SCoP".into());
            }
            if info.has_pointer_access {
                return (false, "pointer accesses break the SCoP".into());
            }
            if info.has_alloc {
                return (false, "allocation breaks the SCoP".into());
            }
            if info.writes_scalar_global {
                return (false, "scalar global write".into());
            }
            if info.ivs.is_empty() || info.bound.is_none() {
                return (false, "no canonical induction variable/bound".into());
            }
            if !info.all_affine() {
                return (false, "non-affine subscript".into());
            }
            // Any loop-carried scalar beyond the IVs defeats detection
            // (including reductions: not part of the dependence-free SCoP).
            // Affine in-place array updates (`a[i] += e`) are fine: the
            // dependence tests below prove their distance zero.
            if !red.reductions.is_empty() || !red.unresolved_carried.is_empty() {
                return (
                    false,
                    "loop-carried scalar (reduction or recurrence)".into(),
                );
            }
            match test_loop(info) {
                Some(s) if !s.has_cross_iteration_dep => {
                    (true, "affine SCoP, dependence-free".into())
                }
                Some(_) => (false, "cross-iteration dependence proven".into()),
                None => (false, "dependence test inapplicable".into()),
            }
        })
    }
}

/// ICC-style static detection: affine dependence testing like Polly, plus
/// scalar reduction support, tolerance of symbolic (loop-invariant) terms,
/// and *pure-function inlining* — loops whose calls are all pure remain
/// analyzable, which the paper credits for ICC's robustness (§V-C1).
#[derive(Debug, Clone, Copy, Default)]
pub struct IccStyle;

impl Detector for IccStyle {
    fn technique(&self) -> Technique {
        Technique::Icc
    }

    fn detect(&self, module: &Module, _args: &[Value]) -> DetectionReport {
        for_each_loop(module, |_lref, info, red, impure_call| {
            if info.has_io {
                return (false, "I/O in loop".into());
            }
            if impure_call {
                return (false, "call with side effects".into());
            }
            if info.has_pointer_access {
                return (false, "pointer accesses defeat dependence analysis".into());
            }
            if info.has_alloc {
                return (false, "allocation in loop".into());
            }
            if info.writes_scalar_global {
                return (false, "scalar global write".into());
            }
            if info.ivs.is_empty() || info.bound.is_none() {
                return (false, "no canonical induction variable/bound".into());
            }
            if !info.all_affine() {
                return (false, "non-affine subscript".into());
            }
            // Plain sum/product/bitwise reductions are fine; min/max and
            // other complex reductions are what the paper notes ICC misses
            // relative to Idioms (§V-C1). Other carried scalars reject.
            if !red.unresolved_carried.is_empty() {
                return (false, "unresolvable loop-carried scalar".into());
            }
            if red.reductions.iter().any(|r| {
                matches!(
                    r.op,
                    dca_analysis::ReductionOp::Min | dca_analysis::ReductionOp::Max
                )
            }) {
                return (false, "min/max reduction unsupported".into());
            }
            match test_loop(info) {
                Some(s) if !s.has_cross_iteration_dep => (
                    true,
                    if red.reductions.is_empty() {
                        "affine, dependence-free".into()
                    } else {
                        "affine with recognized scalar reduction".into()
                    },
                ),
                Some(_) => (false, "cross-iteration dependence proven".into()),
                None => (false, "dependence test inapplicable".into()),
            }
        })
    }
}

/// Idioms-style constraint detection (Ginsbach & O'Boyle): recognizes
/// loops that *are* complex reductions or histograms — every
/// cross-iteration effect is a scalar reduction or a histogram update
/// (whose subscript may be arbitrary, the idiom's strength) — and nothing
/// else.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdiomsStyle;

impl Detector for IdiomsStyle {
    fn technique(&self) -> Technique {
        Technique::Idioms
    }

    fn detect(&self, module: &Module, _args: &[Value]) -> DetectionReport {
        for_each_loop(module, |_lref, info, red, impure_call| {
            if info.has_io {
                return (false, "I/O in loop".into());
            }
            if impure_call {
                return (false, "call with side effects".into());
            }
            if info.has_pointer_access {
                return (false, "pointer accesses outside the idiom language".into());
            }
            if info.writes_scalar_global {
                return (false, "scalar global write".into());
            }
            if !red.unresolved_carried.is_empty() {
                return (false, "carried scalar outside the idiom".into());
            }
            // The interesting idioms are scalar reductions and histograms
            // with *non-affine* subscripts — an affine `a[i] += e` is a
            // plain vectorizable update, not what this tool exists for.
            let nonaffine_hist = red.histograms.iter().any(|h| {
                info.accesses
                    .iter()
                    .any(|a| a.array == h.array && a.is_write && a.subscript.is_none())
            });
            if red.reductions.is_empty() && !nonaffine_hist {
                return (false, "no reduction/histogram idiom".into());
            }
            // Every array *write* must belong to a histogram; reads are
            // unconstrained (gather-style reductions are the tool's point).
            let hist_arrays: Vec<_> = red.histograms.iter().map(|h| h.array).collect();
            for acc in &info.accesses {
                if acc.is_write && !hist_arrays.contains(&acc.array) {
                    return (false, "array write outside the idiom".into());
                }
            }
            (true, "reduction/histogram idiom".into())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detect_tag(det: &dyn Detector, src: &str, tag: &str) -> bool {
        let m = dca_ir::compile(src).expect("compile");
        let report = det.detect(&m, &[]);
        for (lref, t) in dca_ir::all_loops(&m) {
            if t.as_deref() == Some(tag) {
                return report.is_parallel(lref);
            }
        }
        panic!("no loop tagged @{tag}");
    }

    const MAP: &str = "fn main() { let a: [int; 16]; \
         @l: for (let i: int = 0; i < 16; i = i + 1) { a[i] = i * 2; } }";

    const REDUCTION: &str = "fn main() -> int { let s: int = 0; \
         @l: for (let i: int = 0; i < 16; i = i + 1) { s = s + i; } return s; }";

    const HISTOGRAM: &str = "fn main() { let h: [int; 8]; let d: [int; 32]; \
         @l: for (let i: int = 0; i < 32; i = i + 1) { \
           h[d[i] % 8] = h[d[i] % 8] + 1; } }";

    const RECURRENCE: &str = "fn main() { let a: [int; 16]; a[0] = 1; \
         @l: for (let i: int = 1; i < 16; i = i + 1) { a[i] = a[i - 1] + 1; } }";

    const PLDS: &str = "struct N { v: int, next: *N }\n\
         fn main() { let p: *N = new N; \
         @l: while (p != null) { p.v = p.v + 1; p = p.next; } }";

    const PURE_CALL: &str = "fn sq(x: int) -> int { return x * x; }\n\
         fn main() { let a: [int; 16]; \
         @l: for (let i: int = 0; i < 16; i = i + 1) { a[i] = sq(i); } }";

    const INDIRECT: &str = "fn main() { let a: [int; 16]; let idx: [int; 16]; \
         @l: for (let i: int = 0; i < 16; i = i + 1) { a[idx[i]] = i; } }";

    #[test]
    fn polly_accepts_affine_maps_only() {
        assert!(detect_tag(&PollyStyle, MAP, "l"));
        assert!(!detect_tag(&PollyStyle, REDUCTION, "l"), "no reductions");
        assert!(!detect_tag(&PollyStyle, HISTOGRAM, "l"));
        assert!(!detect_tag(&PollyStyle, RECURRENCE, "l"));
        assert!(!detect_tag(&PollyStyle, PLDS, "l"));
        assert!(
            !detect_tag(&PollyStyle, PURE_CALL, "l"),
            "calls break SCoPs"
        );
        assert!(!detect_tag(&PollyStyle, INDIRECT, "l"));
    }

    #[test]
    fn icc_adds_reductions_and_pure_calls() {
        assert!(detect_tag(&IccStyle, MAP, "l"));
        assert!(detect_tag(&IccStyle, REDUCTION, "l"));
        assert!(detect_tag(&IccStyle, PURE_CALL, "l"), "pure calls inlined");
        assert!(!detect_tag(&IccStyle, HISTOGRAM, "l"), "no histograms");
        assert!(!detect_tag(&IccStyle, RECURRENCE, "l"));
        assert!(!detect_tag(&IccStyle, PLDS, "l"));
        assert!(!detect_tag(&IccStyle, INDIRECT, "l"));
    }

    #[test]
    fn idioms_accepts_reductions_and_histograms_only() {
        assert!(detect_tag(&IdiomsStyle, REDUCTION, "l"));
        assert!(
            detect_tag(&IdiomsStyle, HISTOGRAM, "l"),
            "non-affine subscript OK"
        );
        assert!(!detect_tag(&IdiomsStyle, MAP, "l"), "a map is not an idiom");
        assert!(!detect_tag(&IdiomsStyle, RECURRENCE, "l"));
        assert!(!detect_tag(&IdiomsStyle, PLDS, "l"));
    }

    #[test]
    fn min_max_reductions_split_icc_and_idioms() {
        let src = "fn main() -> int { let m: int = 0; \
             @l: for (let i: int = 0; i < 16; i = i + 1) { m = imax(m, i * 7 % 13); } \
             return m; }";
        // The paper notes ICC misses the complex reductions Idioms finds;
        // we model that split on min/max reductions.
        assert!(detect_tag(&IdiomsStyle, src, "l"));
        assert!(!detect_tag(&IccStyle, src, "l"));
    }

    #[test]
    fn io_rejected_by_all() {
        let src = "fn main() { \
             @l: for (let i: int = 0; i < 4; i = i + 1) { print(i); } }";
        assert!(!detect_tag(&PollyStyle, src, "l"));
        assert!(!detect_tag(&IccStyle, src, "l"));
        assert!(!detect_tag(&IdiomsStyle, src, "l"));
    }

    #[test]
    fn symbolic_bounds_ok_for_both_static_dep_tools() {
        let src = "fn kernel(a: *int, n: int) { \
             @l: for (let i: int = 0; i < n; i = i + 1) { a[i] = i; } }\n\
             fn main() { kernel(new [int; 8], 8); }";
        assert!(detect_tag(&PollyStyle, src, "l"));
        assert!(detect_tag(&IccStyle, src, "l"));
    }
}
