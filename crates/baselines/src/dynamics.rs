//! The two dynamic baselines: Dependence Profiling and DiscoPoP-style
//! detection (paper §V-A).
//!
//! Both run the program once under the memory-dependence tracer
//! ([`crate::trace`]) and combine the observed cross-iteration dependences
//! with a static classification of loop-carried scalars. They differ in
//! what they can explain away:
//!
//! * **Dependence Profiling** (Tournavitis et al.): privatization of
//!   write-first locations and reduction recognition including array
//!   histograms.
//! * **DiscoPoP-style** (Li et al.): optimistically ignores WAR/WAW
//!   entirely (assumes privatization), but recognizes only plain
//!   sum/product scalar reductions — no histograms, no min/max.
//!
//! Both inherit dependence analysis' fundamental blind spot (paper §I-A):
//! a pointer-chasing iterator is a loop-carried scalar that is neither an
//! induction variable nor a reduction, so PLDS loops are rejected even
//! when a perfect trace shows no memory conflicts.

use crate::detect::{DetectionReport, Detector, Technique};
use crate::trace::{trace_dependences, LoopDeps, TraceReport};
use dca_analysis::{EffectMap, IteratorSlice, Liveness, ReductionInfo, ReductionOp};
use dca_interp::Value;
use dca_ir::{FuncId, FuncView, Module, Ty};
use std::collections::HashSet;

/// Static per-loop facts shared by the two dynamic tools.
struct ScalarFacts {
    /// Loop-carried scalars not explained by the iterator slice.
    unresolved: bool,
    /// Reduction ops used by carried scalars (empty when none).
    reduction_ops: Vec<ReductionOp>,
    /// The loop does I/O (directly or via calls).
    has_io: bool,
    /// The loop-carried iterator state includes a pointer (PLDS traversal:
    /// dependence-based tools cannot restructure it).
    pointer_carried_iterator: bool,
}

fn scalar_facts(module: &Module, per_loop: &mut dyn FnMut(dca_ir::LoopRef, ScalarFacts)) {
    let effects = EffectMap::new(module);
    let io_funcs = effects.io_funcs();
    for i in 0..module.funcs.len() {
        let view = FuncView::new(module, FuncId(i as u32));
        if view.loops.is_empty() {
            continue;
        }
        let live = Liveness::new(&view);
        for l in view.loops.iter() {
            let slice = IteratorSlice::compute_with(&view, l, &effects);
            let red = ReductionInfo::compute(&view, &live, l, &slice.slice_vars);
            let has_io = dca_analysis::exclusion(&view, l, &slice, &io_funcs)
                .map(|r| matches!(r, dca_analysis::ExclusionReason::PerformsIo))
                .unwrap_or(false);
            // A pointer-typed loop-carried iterator variable: the hallmark
            // of a PLDS traversal. Canonical counted loops carry only
            // integer induction variables.
            let pointer_carried_iterator = live
                .loop_carried(l)
                .iter()
                .any(|&v| matches!(view.func.var(v).ty, Ty::Ptr(_)));
            per_loop(
                dca_ir::LoopRef {
                    func: view.id,
                    loop_id: l.id,
                },
                ScalarFacts {
                    unresolved: !red.unresolved_carried.is_empty(),
                    reduction_ops: red.reductions.iter().map(|r| r.op).collect(),
                    has_io,
                    pointer_carried_iterator,
                },
            );
        }
    }
}

fn run_trace(module: &Module, args: &[Value]) -> TraceReport {
    trace_dependences(module, args, 500_000_000).unwrap_or_default()
}

/// Runs the shared profiling work (one traced execution) once, for use by
/// both dynamic detectors via [`DependenceProfiling::detect_with`] and
/// [`DiscoPopStyle::detect_with`] — the table binaries use this to avoid
/// executing the instrumented program twice.
pub fn shared_trace(module: &Module, args: &[Value]) -> TraceReport {
    run_trace(module, args)
}

/// Profile-driven dependence-based detection in the style of Tournavitis
/// et al. (paper baseline "Dependence Profiling").
#[derive(Debug, Clone, Copy, Default)]
pub struct DependenceProfiling;

impl DependenceProfiling {
    /// Detection from a precomputed trace (see [`shared_trace`]).
    pub fn detect_with(&self, module: &Module, trace: &TraceReport) -> DetectionReport {
        let mut report = DetectionReport::default();
        scalar_facts(module, &mut |lref, facts| {
            let d: LoopDeps = trace.deps(lref);
            let verdict = if facts.has_io {
                (false, "I/O in loop".to_owned())
            } else if !d.observed {
                (false, "not exercised by the profiling workload".to_owned())
            } else if facts.pointer_carried_iterator {
                (
                    false,
                    "loop-carried pointer (PLDS traversal) defeats dependence analysis".to_owned(),
                )
            } else if facts.unresolved {
                (false, "unresolvable loop-carried scalar".to_owned())
            } else if d.raw_outside_reductions {
                (false, "cross-iteration RAW observed".to_owned())
            } else if d.unprivatizable {
                (false, "WAR/WAW on unprivatizable location".to_owned())
            } else {
                (true, "no fatal dependences in profile".to_owned())
            };
            report.set(lref, verdict.0, verdict.1);
        });
        report
    }
}

impl Detector for DependenceProfiling {
    fn technique(&self) -> Technique {
        Technique::DependenceProfiling
    }

    fn detect(&self, module: &Module, args: &[Value]) -> DetectionReport {
        self.detect_with(module, &run_trace(module, args))
    }
}

/// DiscoPoP-style profile-driven detection.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiscoPopStyle;

impl DiscoPopStyle {
    /// Detection from a precomputed trace (see [`shared_trace`]).
    pub fn detect_with(&self, module: &Module, trace: &TraceReport) -> DetectionReport {
        let mut report = DetectionReport::default();
        scalar_facts(module, &mut |lref, facts| {
            let d: LoopDeps = trace.deps(lref);
            let simple_reductions_only = facts
                .reduction_ops
                .iter()
                .all(|op| matches!(op, ReductionOp::Sum | ReductionOp::Product));
            let verdict = if facts.has_io {
                (false, "I/O in loop".to_owned())
            } else if !d.observed {
                (false, "not exercised by the profiling workload".to_owned())
            } else if facts.pointer_carried_iterator {
                (
                    false,
                    "loop-carried pointer (PLDS traversal) defeats dependence analysis".to_owned(),
                )
            } else if facts.unresolved {
                (false, "unresolvable loop-carried scalar".to_owned())
            } else if !simple_reductions_only {
                (false, "complex scalar reduction unsupported".to_owned())
            } else if d.cross_raw {
                // No histogram/array-reduction support: any memory RAW is
                // fatal, even on recognized reduction arrays.
                (false, "cross-iteration RAW observed".to_owned())
            } else {
                // WAR/WAW optimistically assumed privatizable.
                (true, "no cross-iteration RAW in profile".to_owned())
            };
            report.set(lref, verdict.0, verdict.1);
        });
        report
    }
}

impl Detector for DiscoPopStyle {
    fn technique(&self) -> Technique {
        Technique::DiscoPop
    }

    fn detect(&self, module: &Module, args: &[Value]) -> DetectionReport {
        self.detect_with(module, &run_trace(module, args))
    }
}

/// The set of loops two detection reports disagree on (useful in tests and
/// ablation benches).
pub fn disagreements(a: &DetectionReport, b: &DetectionReport) -> HashSet<dca_ir::LoopRef> {
    let mut out = HashSet::new();
    for (l, da) in a.iter() {
        if b.get(l)
            .map(|db| db.parallel != da.parallel)
            .unwrap_or(false)
        {
            out.insert(l);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detect_tag(det: &dyn Detector, src: &str, tag: &str) -> bool {
        let m = dca_ir::compile(src).expect("compile");
        let report = det.detect(&m, &[]);
        for (lref, t) in dca_ir::all_loops(&m) {
            if t.as_deref() == Some(tag) {
                return report.is_parallel(lref);
            }
        }
        panic!("no loop tagged @{tag}");
    }

    const MAP: &str = "fn main() { let a: [int; 16]; \
         @l: for (let i: int = 0; i < 16; i = i + 1) { a[i] = i * 2; } }";

    const INDIRECT_DISJOINT: &str = "fn main() { let a: [int; 16]; let idx: [int; 16]; \
         for (let k: int = 0; k < 16; k = k + 1) { idx[k] = (k * 5) % 16; } \
         @l: for (let i: int = 0; i < 16; i = i + 1) { a[idx[i]] = i; } }";

    const HISTOGRAM: &str = "fn main() { let h: [int; 8]; \
         @l: for (let i: int = 0; i < 32; i = i + 1) { \
           h[i * i % 8] = h[i * i % 8] + 1; } }";

    const RECURRENCE: &str = "fn main() { let a: [int; 16]; a[0] = 1; \
         @l: for (let i: int = 1; i < 16; i = i + 1) { a[i] = a[i - 1] + 1; } }";

    const PLDS: &str = "struct N { v: int, next: *N }\n\
         fn main() { let head: *N = null; \
         for (let i: int = 0; i < 8; i = i + 1) { \
           let n: *N = new N; n.v = i; n.next = head; head = n; } \
         let p: *N = head; \
         @l: while (p != null) { p.v = p.v + 1; p = p.next; } }";

    const MINMAX: &str = "fn main() -> int { let m: int = 0; \
         @l: for (let i: int = 0; i < 16; i = i + 1) { m = imax(m, i * 7 % 13); } \
         return m; }";

    #[test]
    fn both_accept_plain_maps_and_runtime_disjoint_indirection() {
        for det in [&DependenceProfiling as &dyn Detector, &DiscoPopStyle] {
            assert!(detect_tag(det, MAP, "l"), "{} on MAP", det.technique());
            assert!(
                detect_tag(det, INDIRECT_DISJOINT, "l"),
                "{} sees runtime-disjoint indirection",
                det.technique()
            );
        }
    }

    #[test]
    fn both_reject_recurrences_and_plds() {
        for det in [&DependenceProfiling as &dyn Detector, &DiscoPopStyle] {
            assert!(!detect_tag(det, RECURRENCE, "l"), "{}", det.technique());
            assert!(
                !detect_tag(det, PLDS, "l"),
                "{} must fail on pointer chasing (paper §I-A)",
                det.technique()
            );
        }
    }

    #[test]
    fn histogram_splits_the_two_tools() {
        assert!(
            detect_tag(&DependenceProfiling, HISTOGRAM, "l"),
            "DepProf recognizes array reductions"
        );
        assert!(
            !detect_tag(&DiscoPopStyle, HISTOGRAM, "l"),
            "DiscoPoP-style does not"
        );
    }

    #[test]
    fn minmax_reduction_splits_the_two_tools() {
        assert!(detect_tag(&DependenceProfiling, MINMAX, "l"));
        assert!(!detect_tag(&DiscoPopStyle, MINMAX, "l"));
    }

    #[test]
    fn unexercised_loops_not_reported() {
        let src = "fn main(n: int) { let a: [int; 8]; \
             @l: for (let i: int = 0; i < n; i = i + 1) { a[i] = i; } }";
        let m = dca_ir::compile(src).expect("compile");
        // Run with n = 0: the loop body never executes.
        let report = DependenceProfiling.detect(&m, &[Value::Int(0)]);
        let (lref, _) = dca_ir::all_loops(&m)[0];
        assert!(!report.is_parallel(lref));
        assert!(report
            .get(lref)
            .expect("analyzed")
            .reason
            .contains("not exercised"));
    }

    #[test]
    fn disagreement_helper() {
        let m = dca_ir::compile(HISTOGRAM).expect("compile");
        let a = DependenceProfiling.detect(&m, &[]);
        let b = DiscoPopStyle.detect(&m, &[]);
        assert_eq!(disagreements(&a, &b).len(), 1);
    }
}
