//! The five state-of-the-art parallelism detectors the paper evaluates DCA
//! against (§V-A), behind one [`Detector`] interface — plus an adapter
//! putting DCA itself behind the same interface so the evaluation tables
//! can iterate over all six techniques uniformly.
//!
//! * Dynamic, profile-driven ([`dynamics`]): [`DependenceProfiling`]
//!   (Tournavitis et al. 2009) and [`DiscoPopStyle`] (Li et al. 2016),
//!   built on the shared memory-dependence tracer in [`trace`].
//! * Static ([`statics`]): [`IdiomsStyle`] (Ginsbach & O'Boyle 2017),
//!   [`PollyStyle`] (Grosser et al. 2012) and [`IccStyle`].
//!
//! # Example
//!
//! ```
//! use dca_baselines::{Detector, PollyStyle, DependenceProfiling};
//!
//! let module = dca_ir::compile(
//!     "fn main() { let a: [int; 16];
//!          @l: for (let i: int = 0; i < 16; i = i + 1) { a[i] = i; } }",
//! ).map_err(|e| e.to_string())?;
//! let l = dca_ir::all_loops(&module)[0].0;
//! assert!(PollyStyle.detect(&module, &[]).is_parallel(l));
//! assert!(DependenceProfiling.detect(&module, &[]).is_parallel(l));
//! # Ok::<(), String>(())
//! ```

#![warn(missing_docs)]

pub mod dca_adapter;
pub mod detect;
pub mod dynamics;
pub mod statics;
pub mod trace;

pub use dca_adapter::DcaDetector;
pub use detect::{DetectionReport, Detector, LoopDetection, Technique};
pub use dynamics::{disagreements, shared_trace, DependenceProfiling, DiscoPopStyle};
pub use statics::{IccStyle, IdiomsStyle, PollyStyle};
pub use trace::{trace_dependences, DepTracer, LoopDeps, TraceReport};

use dca_interp::Value;
use dca_ir::{LoopRef, Module};
use std::collections::BTreeSet;

/// Runs the three static techniques and combines their findings: a loop
/// counts as detected when *any* of Idioms, Polly or ICC reports it
/// (the paper's "Combined Static", Table III).
pub fn combined_static(module: &Module) -> BTreeSet<LoopRef> {
    let mut out = BTreeSet::new();
    for det in [&IdiomsStyle as &dyn Detector, &PollyStyle, &IccStyle] {
        out.extend(det.detect(module, &[]).parallel_loops());
    }
    out
}

/// Convenience: every detector (five baselines + DCA), boxed, in the
/// paper's presentation order.
pub fn all_detectors(dca_config: dca_core::DcaConfig) -> Vec<Box<dyn Detector>> {
    vec![
        Box::new(DependenceProfiling),
        Box::new(DiscoPopStyle),
        Box::new(IdiomsStyle),
        Box::new(PollyStyle),
        Box::new(IccStyle),
        Box::new(DcaDetector::new(dca_config)),
    ]
}

/// Runs one detector and returns just the parallel set (helper for tables).
pub fn parallel_set(det: &dyn Detector, module: &Module, args: &[Value]) -> BTreeSet<LoopRef> {
    det.detect(module, args).parallel_loops().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combined_static_is_a_union() {
        // A reduction (Idioms+ICC) and a map (Polly+ICC): combined = both.
        let m = dca_ir::compile(
            "fn main() -> int { let a: [int; 8]; let s: int = 0; \
             @map: for (let i: int = 0; i < 8; i = i + 1) { a[i] = i; } \
             @red: for (let i: int = 0; i < 8; i = i + 1) { s = s + a[i]; } \
             return s; }",
        )
        .expect("compile");
        let combined = combined_static(&m);
        assert_eq!(combined.len(), 2);
        let polly = parallel_set(&PollyStyle, &m, &[]);
        let idioms = parallel_set(&IdiomsStyle, &m, &[]);
        assert_eq!(polly.len(), 1);
        assert_eq!(idioms.len(), 1);
        assert!(polly.is_disjoint(&idioms));
    }

    #[test]
    fn all_detectors_cover_six_techniques() {
        let dets = all_detectors(dca_core::DcaConfig::fast());
        let names: Vec<_> = dets.iter().map(|d| d.technique()).collect();
        assert_eq!(names.len(), 6);
        assert!(names.contains(&Technique::Dca));
        assert!(names.contains(&Technique::Polly));
    }
}
