//! The common detector interface all six techniques implement.

use dca_interp::Value;
use dca_ir::{LoopRef, Module};
use std::collections::BTreeMap;
use std::fmt;

/// The parallelism-detection techniques of the paper's evaluation
/// (§V-A), plus DCA itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Technique {
    /// Profile-driven dependence-based detection (Tournavitis et al.).
    DependenceProfiling,
    /// DiscoPoP-style profile-driven detection (Li et al.).
    DiscoPop,
    /// Constraint-based reduction/histogram idiom detection (Ginsbach &
    /// O'Boyle).
    Idioms,
    /// Polyhedral (SCoP) detection, Polly-style.
    Polly,
    /// Industrial static auto-parallelization, ICC-style.
    Icc,
    /// Dynamic Commutativity Analysis (this paper).
    Dca,
}

impl Technique {
    /// True for the techniques that execute the program.
    pub fn is_dynamic(self) -> bool {
        matches!(
            self,
            Technique::DependenceProfiling | Technique::DiscoPop | Technique::Dca
        )
    }
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Technique::DependenceProfiling => "DepProf",
            Technique::DiscoPop => "DiscoPoP",
            Technique::Idioms => "Idioms",
            Technique::Polly => "Polly",
            Technique::Icc => "ICC",
            Technique::Dca => "DCA",
        };
        write!(f, "{s}")
    }
}

/// Per-loop detection outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopDetection {
    /// Reported parallelizable?
    pub parallel: bool,
    /// Human-readable justification (for reports and debugging).
    pub reason: String,
}

/// The result of running one detector over one module.
#[derive(Debug, Clone, Default)]
pub struct DetectionReport {
    per_loop: BTreeMap<LoopRef, LoopDetection>,
}

impl DetectionReport {
    /// Records the outcome for one loop.
    pub fn set(&mut self, l: LoopRef, parallel: bool, reason: impl Into<String>) {
        self.per_loop.insert(
            l,
            LoopDetection {
                parallel,
                reason: reason.into(),
            },
        );
    }

    /// The outcome for `l`, if the loop was analyzed.
    pub fn get(&self, l: LoopRef) -> Option<&LoopDetection> {
        self.per_loop.get(&l)
    }

    /// True if `l` was reported parallelizable.
    pub fn is_parallel(&self, l: LoopRef) -> bool {
        self.per_loop.get(&l).map(|d| d.parallel).unwrap_or(false)
    }

    /// Loops reported parallelizable.
    pub fn parallel_loops(&self) -> impl Iterator<Item = LoopRef> + '_ {
        self.per_loop
            .iter()
            .filter(|(_, d)| d.parallel)
            .map(|(&l, _)| l)
    }

    /// Number of loops reported parallelizable.
    pub fn parallel_count(&self) -> usize {
        self.parallel_loops().count()
    }

    /// Number of loops analyzed.
    pub fn total(&self) -> usize {
        self.per_loop.len()
    }

    /// All per-loop outcomes.
    pub fn iter(&self) -> impl Iterator<Item = (LoopRef, &LoopDetection)> {
        self.per_loop.iter().map(|(&l, d)| (l, d))
    }
}

/// A parallelizable-loop detector.
pub trait Detector {
    /// The technique this detector models.
    fn technique(&self) -> Technique;

    /// Analyzes every loop of `module`. Dynamic techniques run
    /// `main(args)` as their profiling workload; static ones ignore
    /// `args`.
    fn detect(&self, module: &Module, args: &[Value]) -> DetectionReport;
}

#[cfg(test)]
mod tests {
    use super::*;
    use dca_ir::{FuncId, LoopId};

    #[test]
    fn report_accessors() {
        let mut r = DetectionReport::default();
        let l0 = LoopRef {
            func: FuncId(0),
            loop_id: LoopId(0),
        };
        let l1 = LoopRef {
            func: FuncId(0),
            loop_id: LoopId(1),
        };
        r.set(l0, true, "affine, no deps");
        r.set(l1, false, "cross-iteration RAW");
        assert!(r.is_parallel(l0));
        assert!(!r.is_parallel(l1));
        assert_eq!(r.parallel_count(), 1);
        assert_eq!(r.total(), 2);
        assert!(r.get(l1).expect("analyzed").reason.contains("RAW"));
    }

    #[test]
    fn technique_properties() {
        assert!(Technique::Dca.is_dynamic());
        assert!(Technique::DiscoPop.is_dynamic());
        assert!(!Technique::Polly.is_dynamic());
        assert_eq!(Technique::Icc.to_string(), "ICC");
    }
}
