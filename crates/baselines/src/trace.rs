//! Dynamic memory-dependence profiling.
//!
//! The dynamic baselines (Dependence Profiling [Tournavitis et al.] and
//! DiscoPoP [Li et al.]) decide parallelizability from observed memory
//! dependences. This module runs the program once under instrumentation and
//! produces, for every loop, the cross-iteration dependences it exhibited
//! and whether each conflicting location is privatizable (written before
//! read in every iteration that touches it).
//!
//! Scalars held in registers are not memory here — like the real tools,
//! the baselines combine this trace with *static* classification of
//! loop-carried scalars (induction variables, reductions).

use dca_interp::{Addr, Hooks, Machine, Site, Trap, Value};
use dca_ir::{BlockId, FuncId, FuncView, LoopId, LoopRef, Module};
use std::collections::HashMap;

/// Per-location access state within one active loop invocation.
#[derive(Debug, Clone, Copy, Default)]
struct AddrState {
    last_write_iter: Option<u64>,
    last_read_iter: Option<u64>,
    /// Iteration currently tracked by `written_this_iter`.
    cur_iter: u64,
    written_this_iter: bool,
    /// Read before any write within some iteration (defeats privatization).
    upward_read: bool,
    raw: bool,
    waw: bool,
    war: bool,
}

/// Aggregated dependence facts for one loop (over all invocations).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoopDeps {
    /// Some location was read in a later iteration than it was written.
    pub cross_raw: bool,
    /// Some location was written in two different iterations.
    pub cross_waw: bool,
    /// Some location was written after being read in an earlier iteration.
    pub cross_war: bool,
    /// A cross-iteration RAW hit a location *not* registered as a
    /// reduction target.
    pub raw_outside_reductions: bool,
    /// A WAR/WAW conflict hit a non-reduction location with an
    /// upward-exposed read, so privatization cannot remove it.
    pub unprivatizable: bool,
    /// The loop executed at least one iteration.
    pub observed: bool,
}

/// Result of one profiling run.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    deps: HashMap<LoopRef, LoopDeps>,
}

impl TraceReport {
    /// The dependence facts for `l` (all-false if never observed).
    pub fn deps(&self, l: LoopRef) -> LoopDeps {
        self.deps.get(&l).copied().unwrap_or_default()
    }
}

struct FuncTable {
    innermost: Vec<Option<LoopId>>,
    parent: Vec<Option<LoopId>>,
    header: Vec<BlockId>,
    /// Objects whose cells are reduction targets (histogram arrays),
    /// resolved per activation: static key is (loop, var/global).
    histogram_globals: Vec<Vec<dca_ir::GlobalId>>,
    histogram_vars: Vec<Vec<dca_ir::VarId>>,
}

struct ActiveLoop {
    depth: usize,
    lref: LoopRef,
    iter: u64,
    /// Heap objects registered as reduction (histogram) targets for this
    /// activation.
    reduction_objs: Vec<dca_interp::ObjId>,
    state: HashMap<Addr, AddrState>,
}

/// The profiling [`Hooks`] implementation.
pub struct DepTracer {
    tables: Vec<FuncTable>,
    active: Vec<ActiveLoop>,
    report: TraceReport,
}

impl DepTracer {
    /// Precomputes the loop tables (including static histogram targets, so
    /// RAWs on recognized array reductions can be classified).
    pub fn new(module: &Module) -> Self {
        let mut tables = Vec::with_capacity(module.funcs.len());
        let effects = dca_analysis::EffectMap::new(module);
        for i in 0..module.funcs.len() {
            let view = FuncView::new(module, FuncId(i as u32));
            let live = dca_analysis::Liveness::new(&view);
            let nloops = view.loops.len();
            let mut innermost = vec![None; view.func.blocks.len()];
            for b in view.func.block_ids() {
                innermost[b.index()] = view.loops.innermost(b);
            }
            let mut parent = vec![None; nloops];
            let mut header = vec![BlockId(0); nloops];
            let mut histogram_globals = vec![Vec::new(); nloops];
            let mut histogram_vars = vec![Vec::new(); nloops];
            for l in view.loops.iter() {
                parent[l.id.index()] = l.parent;
                header[l.id.index()] = l.header;
                let slice = dca_analysis::IteratorSlice::compute_with(&view, l, &effects);
                let red = dca_analysis::ReductionInfo::compute(&view, &live, l, &slice.slice_vars);
                for h in &red.histograms {
                    match h.array {
                        dca_analysis::ArrayKey::Global(g) => {
                            histogram_globals[l.id.index()].push(g)
                        }
                        dca_analysis::ArrayKey::Var(v) => histogram_vars[l.id.index()].push(v),
                    }
                }
            }
            tables.push(FuncTable {
                innermost,
                parent,
                header,
                histogram_globals,
                histogram_vars,
            });
        }
        DepTracer {
            tables,
            active: Vec::new(),
            report: TraceReport::default(),
        }
    }

    /// Consumes the tracer, producing the report.
    pub fn finish(mut self) -> TraceReport {
        while let Some(a) = self.active.pop() {
            merge(&mut self.report, a);
        }
        self.report
    }

    fn chain(&self, func: FuncId, block: BlockId) -> Vec<LoopId> {
        let t = &self.tables[func.index()];
        let mut out = Vec::new();
        let mut cur = t.innermost[block.index()];
        while let Some(l) = cur {
            out.push(l);
            cur = t.parent[l.index()];
        }
        out.reverse();
        out
    }

    fn close_down_to(&mut self, keep: usize) {
        while self.active.len() > keep {
            let a = self.active.pop().expect("len checked");
            merge(&mut self.report, a);
        }
    }

    fn access(&mut self, addr: Addr, is_write: bool) {
        for a in &mut self.active {
            let st = a.state.entry(addr).or_default();
            if st.cur_iter != a.iter {
                st.cur_iter = a.iter;
                st.written_this_iter = false;
            }
            if is_write {
                if let Some(w) = st.last_write_iter {
                    if w != a.iter {
                        st.waw = true;
                    }
                }
                if let Some(r) = st.last_read_iter {
                    if r != a.iter {
                        st.war = true;
                    }
                }
                st.last_write_iter = Some(a.iter);
                st.written_this_iter = true;
            } else {
                if let Some(w) = st.last_write_iter {
                    if w != a.iter {
                        st.raw = true;
                    }
                }
                if !st.written_this_iter {
                    st.upward_read = true;
                }
                st.last_read_iter = Some(a.iter);
            }
        }
    }
}

fn merge(report: &mut TraceReport, a: ActiveLoop) {
    let e = report.deps.entry(a.lref).or_default();
    for (addr, st) in &a.state {
        let reduction = a.reduction_objs.contains(&addr.obj);
        if st.raw {
            e.cross_raw = true;
            if !reduction {
                e.raw_outside_reductions = true;
            }
        }
        if st.waw {
            e.cross_waw = true;
        }
        if st.war {
            e.cross_war = true;
        }
        if (st.waw || st.war) && st.upward_read && !reduction {
            e.unprivatizable = true;
        }
    }
    // "Observed" means the loop actually iterated (or at least touched
    // memory); a header evaluation that immediately exits is not an
    // exercised loop.
    e.observed |= a.iter > 0 || !a.state.is_empty();
}

impl Hooks for DepTracer {
    fn on_block(&mut self, site: Site, block: BlockId, vars: &mut [Value]) {
        let chain = self.chain(site.func, block);
        let base = self
            .active
            .iter()
            .position(|a| a.depth >= site.depth)
            .unwrap_or(self.active.len());
        let mut matched = 0;
        while matched < chain.len() {
            let idx = base + matched;
            match self.active.get(idx) {
                Some(a)
                    if a.depth == site.depth
                        && a.lref.func == site.func
                        && a.lref.loop_id == chain[matched] =>
                {
                    matched += 1;
                }
                _ => break,
            }
        }
        self.close_down_to(base + matched);
        for &l in &chain[matched..] {
            let lref = LoopRef {
                func: site.func,
                loop_id: l,
            };
            let t = &self.tables[site.func.index()];
            let mut reduction_objs = Vec::new();
            for &g in &t.histogram_globals[l.index()] {
                reduction_objs.push(dca_interp::ObjId(g.0));
            }
            for &v in &t.histogram_vars[l.index()] {
                if let Some(Value::Ptr(o)) = vars.get(v.index()) {
                    reduction_objs.push(*o);
                }
            }
            self.active.push(ActiveLoop {
                depth: site.depth,
                lref,
                iter: 0,
                reduction_objs,
                state: HashMap::new(),
            });
        }
        // Header re-arrival of the innermost active loop = next iteration.
        if matched > 0 && matched == chain.len() {
            let t = &self.tables[site.func.index()];
            let inner = chain[matched - 1];
            if t.header[inner.index()] == block {
                if let Some(a) = self.active.last_mut() {
                    if a.lref.loop_id == inner && a.lref.func == site.func {
                        a.iter += 1;
                    }
                }
            }
        }
    }

    fn on_read(&mut self, _site: Site, addr: Addr) {
        self.access(addr, false);
    }

    fn on_write(&mut self, _site: Site, addr: Addr) {
        self.access(addr, true);
    }

    fn on_return(&mut self, site: Site, _func: FuncId) {
        let keep = self
            .active
            .iter()
            .position(|a| a.depth >= site.depth)
            .unwrap_or(self.active.len());
        self.close_down_to(keep);
    }
}

/// Runs `main(args)` under the dependence tracer and returns the report.
///
/// # Errors
///
/// Propagates interpreter traps.
///
/// # Panics
///
/// Panics if the module has no `main`.
pub fn trace_dependences(
    module: &Module,
    args: &[Value],
    max_steps: u64,
) -> Result<TraceReport, Trap> {
    let mut machine = Machine::new(module);
    machine.push_call(module.main().expect("module has `main`"), args)?;
    let mut tracer = DepTracer::new(module);
    machine.run(&mut tracer, max_steps)?;
    Ok(tracer.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deps_of(src: &str, tag: &str) -> LoopDeps {
        let m = dca_ir::compile(src).expect("compile");
        let report = trace_dependences(&m, &[], 50_000_000).expect("trace");
        for (lref, t) in dca_ir::all_loops(&m) {
            if t.as_deref() == Some(tag) {
                return report.deps(lref);
            }
        }
        panic!("no loop tagged @{tag}");
    }

    #[test]
    fn independent_writes_have_no_cross_deps() {
        let d = deps_of(
            "fn main() { let a: [int; 16]; \
             @l: for (let i: int = 0; i < 16; i = i + 1) { a[i] = i; } }",
            "l",
        );
        assert!(d.observed);
        assert!(!d.cross_raw && !d.cross_waw && !d.cross_war);
    }

    #[test]
    fn recurrence_shows_cross_raw() {
        let d = deps_of(
            "fn main() { let a: [int; 16]; a[0] = 1; \
             @l: for (let i: int = 1; i < 16; i = i + 1) { a[i] = a[i - 1] + 1; } }",
            "l",
        );
        assert!(d.cross_raw);
        assert!(d.raw_outside_reductions);
    }

    #[test]
    fn pointer_chase_iterator_has_no_memory_raw() {
        // The `p = p.next` dependence lives in a register, not memory; the
        // node updates touch disjoint cells. (This is why pure trace-based
        // tools still reject it — the *scalar* p is loop-carried, which the
        // static side flags.)
        let d = deps_of(
            "struct N { v: int, next: *N }\n\
             fn main() { let head: *N = null; \
             for (let i: int = 0; i < 8; i = i + 1) { \
               let n: *N = new N; n.v = i; n.next = head; head = n; } \
             let p: *N = head; \
             @walk: while (p != null) { p.v = p.v + 1; p = p.next; } }",
            "walk",
        );
        assert!(d.observed);
        assert!(!d.cross_raw);
    }

    #[test]
    fn histogram_raw_classified_as_reduction() {
        let d = deps_of(
            "fn main() { let h: [int; 5]; \
             @l: for (let i: int = 0; i < 32; i = i + 1) { \
               h[i % 5] = h[i % 5] + 1; } }",
            "l",
        );
        assert!(d.cross_raw, "histogram cells collide across iterations");
        assert!(
            !d.raw_outside_reductions,
            "but the collisions are on the recognized histogram array"
        );
    }

    #[test]
    fn shared_scalar_cell_shows_waw_and_raw() {
        let d = deps_of(
            "let g: int;\n\
             fn main() { \
             @l: for (let i: int = 0; i < 8; i = i + 1) { g = i; } }",
            "l",
        );
        assert!(d.cross_waw);
    }

    #[test]
    fn privatizable_temp_array_write_first() {
        // tmp[] is fully written before being read in every iteration: WAW
        // across iterations but privatizable (no upward-exposed reads).
        let d = deps_of(
            "fn main() { let tmp: [int; 4]; let a: [int; 16]; \
             @l: for (let i: int = 0; i < 16; i = i + 1) { \
               for (let k: int = 0; k < 4; k = k + 1) { tmp[k] = i + k; } \
               let s: int = 0; \
               for (let k: int = 0; k < 4; k = k + 1) { s = s + tmp[k]; } \
               a[i] = s; } }",
            "l",
        );
        assert!(d.cross_waw, "tmp rewritten each iteration");
        assert!(!d.cross_raw);
        assert!(!d.unprivatizable, "tmp written before read each time");
    }

    #[test]
    fn upward_exposed_read_flagged() {
        let d = deps_of(
            "let g: [int; 4];\n\
             fn main() { let a: [int; 8]; \
             @l: for (let i: int = 0; i < 8; i = i + 1) { a[i] = g[i % 4]; } }",
            "l",
        );
        // g is only read — reads of pre-loop values create no conflicts,
        // so nothing is flagged.
        assert!(!d.unprivatizable);
        assert!(!d.cross_raw && !d.cross_waw && !d.cross_war);
    }
}
