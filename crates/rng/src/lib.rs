//! Self-contained deterministic pseudo-randomness for the DCA workspace.
//!
//! Everything random in this repository — the shuffled iteration schedules
//! of the dynamic stage, generated test programs, synthetic cost profiles —
//! must be (a) reproducible from a seed and (b) free of external crate
//! dependencies, since the build environment is offline. This crate
//! provides both: a [splitmix64](https://prng.di.unimi.it/splitmix64.c)
//! stream generator ([`Rng`]) and the matching stateless finalizer
//! ([`mix64`]) used to derive per-loop/per-invocation seeds without the
//! additive collisions a plain `seed + a + b` scheme suffers.

#![warn(missing_docs)]

/// The golden-ratio increment of the splitmix64 stream.
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The splitmix64 finalizer: a bijective avalanche mix of one 64-bit word.
///
/// Distinct inputs always map to distinct outputs (the function is a
/// permutation of `u64`), and nearby inputs are scattered apart — exactly
/// what seed derivation from small structured components needs.
#[must_use]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An incremental, order-sensitive 128-bit fingerprint built on
/// [`mix64`].
///
/// Words round-robin across two sets of four lanes: set A chains each
/// lane through an xor-multiply-add with an odd multiplier, set B
/// through a rotate-xor-add. [`Fingerprint::digest`] folds all eight
/// lanes plus the word count through a [`mix64`] cascade. The
/// construction is:
///
/// * **deterministic** — the digest is a pure function of the pushed
///   word sequence, identical on every platform;
/// * **order- and length-sensitive** — `[a, b]`, `[b, a]` and `[a]` all
///   produce different digests (lane assignment is positional, each
///   absorption is a bijection of the lane state, and the count is
///   finalized in);
/// * **fast** — a couple of ALU ops per word with no serial cross-word
///   dependency inside a four-word block, so [`Block4::push4`] on
///   an aligned stream sustains near-memory-bandwidth absorption; no
///   allocation, fixed state.
///
/// A single-word change can never cancel (each lane step is
/// invertible), and a multi-word change must cancel in both lane sets
/// at once, which their different shapes prevent for structured
/// differences: cancelling set A at lane distance `j` needs the second
/// difference to equal the first times `M_A`^`j`, which for the
/// add-stable sign-bit pattern (two cells differing only in bit 63,
/// e.g. `x` vs `-x` floats) means another sign-bit flip — but set B
/// rotates a difference off the MSB and then passes it through a
/// carry-propagating add, so it only cancels when the second difference
/// matches a data-dependent carry spread no fixed pattern can supply.
/// It is a fingerprint for equality checking of canonical value streams
/// (collisions are ~2⁻¹²⁸ for accidental inputs), not a cryptographic
/// hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fingerprint {
    a0: u64,
    a1: u64,
    a2: u64,
    a3: u64,
    b0: u64,
    b1: u64,
    b2: u64,
    b3: u64,
    n: u64,
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

/// One set-A lane step: xor-multiply-add with an odd (bijective)
/// multiplier.
#[inline(always)]
fn lane_a(lane: u64, word: u64) -> u64 {
    // +1 (not a wide constant) keeps the zero state escaping without
    // costing the hot loop a register.
    (lane ^ word).wrapping_mul(Fingerprint::M_A).wrapping_add(1)
}

/// One set-B lane step: rotate-xor-add. The rotate moves any injected
/// difference off the carry-stable MSB; the add then spreads it
/// data-dependently, so set B never mirrors set A's cancellation
/// pattern.
#[inline(always)]
fn lane_b(lane: u64, word: u64) -> u64 {
    (lane.rotate_left(29) ^ word).wrapping_add(!GAMMA)
}

impl Fingerprint {
    /// Set-A multiplier: the xorshift* constant — odd, so each
    /// absorption is a bijection of the lane state.
    const M_A: u64 = 0x2545_F491_4F6C_DD1D;

    /// An empty fingerprint (no words absorbed).
    #[must_use]
    pub fn new() -> Self {
        let seed = |k: u64| mix64(GAMMA.wrapping_mul(k + 1));
        Fingerprint {
            a0: seed(0),
            a1: seed(1),
            a2: seed(2),
            a3: seed(3),
            b0: seed(4),
            b1: seed(5),
            b2: seed(6),
            b3: seed(7),
            n: 0,
        }
    }

    /// Absorbs one word into the lane pair selected by the stream
    /// position.
    #[inline]
    pub fn push(&mut self, word: u64) {
        match self.n & 3 {
            0 => {
                self.a0 = lane_a(self.a0, word);
                self.b0 = lane_b(self.b0, word);
            }
            1 => {
                self.a1 = lane_a(self.a1, word);
                self.b1 = lane_b(self.b1, word);
            }
            2 => {
                self.a2 = lane_a(self.a2, word);
                self.b2 = lane_b(self.b2, word);
            }
            _ => {
                self.a3 = lane_a(self.a3, word);
                self.b3 = lane_b(self.b3, word);
            }
        }
        self.n += 1;
    }

    /// Absorbs a byte slice as a self-delimiting record: the length in
    /// bytes first, then the bytes packed into little-endian words with
    /// zero padding in the final partial word. The length prefix keeps
    /// the encoding prefix-free — `push_bytes(b"ab"); push_bytes(b"c")`
    /// and `push_bytes(b"abc")` produce different streams — so
    /// structured keys built from several variable-length components
    /// (the verdict cache's canonical IR text, for one) can never
    /// collide by re-bracketing.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        self.push(bytes.len() as u64);
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.push(u64::from_le_bytes(c.try_into().expect("exact chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut w = [0u8; 8];
            w[..rem.len()].copy_from_slice(rem);
            self.push(u64::from_le_bytes(w));
        }
    }

    /// Absorbs a string's UTF-8 bytes (see [`Fingerprint::push_bytes`]).
    pub fn push_str(&mut self, s: &str) {
        self.push_bytes(s.as_bytes());
    }

    /// Pads the stream with zero words up to the next four-word block
    /// boundary. The padding is part of the stream (callers must pad at
    /// positions that are a pure function of already-absorbed structure,
    /// so padded and unpadded words can never be confused).
    #[inline]
    pub fn align4(&mut self) {
        while self.n & 3 != 0 {
            self.push(0);
        }
    }

    /// Pads to a block boundary (see [`Fingerprint::align4`]) and
    /// returns a bulk absorber that holds the lane state by value, so a
    /// loop over [`Block4::push4`] keeps every lane in a register —
    /// [`Fingerprint::push`]'s per-word lane dispatch would otherwise
    /// bounce the lanes through memory. Call [`Block4::finish`] to write
    /// the lanes back.
    pub fn block4(&mut self) -> Block4<'_> {
        self.align4();
        Block4 {
            lanes: Lanes {
                a0: self.a0,
                a1: self.a1,
                a2: self.a2,
                a3: self.a3,
                b0: self.b0,
                b1: self.b1,
                b2: self.b2,
                b3: self.b3,
            },
            blocks: 0,
            fp: self,
        }
    }

    /// The 128-bit digest of everything pushed so far. Does not consume
    /// the fingerprint; pushing more words after reading a digest is
    /// fine.
    #[must_use]
    pub fn digest(&self) -> u128 {
        // Cascade every lane and the length into both output halves.
        let a = [self.a0, self.a1, self.a2, self.a3];
        let b = [self.b0, self.b1, self.b2, self.b3];
        let mut x = self.n ^ GAMMA;
        let mut y = !self.n;
        for i in 0..4 {
            x = mix64(x ^ a[i]).wrapping_add(b[i]);
            y = mix64(y ^ b[i]).wrapping_add(a[i].rotate_left(32));
        }
        (u128::from(mix64(x)) << 64) | u128::from(mix64(y))
    }
}

/// The eight lane registers of a [`Fingerprint`], detached by value for
/// a bulk absorption loop. `Copy`, plain scalars, no back-pointer: a
/// loop that owns a `Lanes` and calls [`Lanes::push4`] compiles to
/// straight-line register arithmetic with no loads or stores of lane
/// state — even across early loop exits, where a `&mut`-based absorber
/// makes the compiler write every lane back each iteration.
#[derive(Debug, Clone, Copy)]
pub struct Lanes {
    a0: u64,
    a1: u64,
    a2: u64,
    a3: u64,
    b0: u64,
    b1: u64,
    b2: u64,
    b3: u64,
}

impl Lanes {
    /// Absorbs one four-word block. Equivalent to four
    /// [`Fingerprint::push`] calls on an aligned stream; block
    /// accounting is the caller's job (see [`Block4::put_lanes`]).
    #[inline(always)]
    pub fn push4(&mut self, w: [u64; 4]) {
        self.a0 = lane_a(self.a0, w[0]);
        self.a1 = lane_a(self.a1, w[1]);
        self.a2 = lane_a(self.a2, w[2]);
        self.a3 = lane_a(self.a3, w[3]);
        self.b0 = lane_b(self.b0, w[0]);
        self.b1 = lane_b(self.b1, w[1]);
        self.b2 = lane_b(self.b2, w[2]);
        self.b3 = lane_b(self.b3, w[3]);
    }
}

/// A bulk four-word-block absorber for [`Fingerprint`], created by
/// [`Fingerprint::block4`]. Absorbing a block is exactly equivalent to
/// four [`Fingerprint::push`] calls on the aligned stream; the lane
/// state lives in this struct by value so the hot loop never leaves
/// registers. Dropping it without [`Block4::finish`] discards the
/// absorbed blocks.
pub struct Block4<'a> {
    lanes: Lanes,
    blocks: u64,
    fp: &'a mut Fingerprint,
}

impl Block4<'_> {
    /// Absorbs one four-word block.
    #[inline(always)]
    pub fn push4(&mut self, w: [u64; 4]) {
        self.lanes.push4(w);
        self.blocks += 1;
    }

    /// Detaches the lane state by value for a call-free bulk loop.
    /// Absorb blocks with [`Lanes::push4`], then hand the lanes back
    /// with [`Block4::put_lanes`]; absorbing through the absorber
    /// itself while a detached copy is live would fork the state, so
    /// don't.
    #[must_use]
    pub fn lanes(&self) -> Lanes {
        self.lanes
    }

    /// Reattaches lanes detached by [`Block4::lanes`], accounting for
    /// `blocks` four-word blocks absorbed through them.
    pub fn put_lanes(&mut self, lanes: Lanes, blocks: u64) {
        self.lanes = lanes;
        self.blocks += blocks;
    }

    /// Writes the lane state back into the parent fingerprint.
    pub fn finish(self) {
        self.fp.a0 = self.lanes.a0;
        self.fp.a1 = self.lanes.a1;
        self.fp.a2 = self.lanes.a2;
        self.fp.a3 = self.lanes.a3;
        self.fp.b0 = self.lanes.b0;
        self.fp.b1 = self.lanes.b1;
        self.fp.b2 = self.lanes.b2;
        self.fp.b3 = self.lanes.b3;
        self.fp.n += self.blocks * 4;
    }
}

/// A small, fast, seeded PRNG (the splitmix64 stream).
///
/// Not cryptographic; statistically solid for shuffles and test-case
/// generation, and fully deterministic per seed on every platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator whose stream is a pure function of `seed`.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        mix64(self.state)
    }

    /// A uniform value in `[0, n)` (unbiased via rejection sampling).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        // Reject the final partial block so every residue is equally likely.
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// A uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// A uniform `i64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi.abs_diff(lo)) as i64
    }

    /// A uniform `u64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// A fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// An unbiased Fisher–Yates shuffle of `items`.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// A uniformly random element of `items`, or `None` when empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below(items.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        let mut c = Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn mix64_is_injective_on_a_dense_grid() {
        let mut seen = std::collections::HashSet::new();
        for x in 0..10_000u64 {
            assert!(seen.insert(mix64(x)));
        }
        // Nearby inputs land far apart.
        assert!(mix64(0).abs_diff(mix64(1)) > 1 << 32);
    }

    #[test]
    fn fingerprint_is_deterministic_and_order_sensitive() {
        let digest_of = |words: &[u64]| {
            let mut fp = Fingerprint::new();
            for &w in words {
                fp.push(w);
            }
            fp.digest()
        };
        assert_eq!(digest_of(&[1, 2, 3]), digest_of(&[1, 2, 3]));
        assert_ne!(digest_of(&[1, 2, 3]), digest_of(&[3, 2, 1]), "order");
        assert_ne!(digest_of(&[1, 2]), digest_of(&[1, 2, 0]), "length");
        assert_ne!(digest_of(&[]), digest_of(&[0]), "empty vs one zero word");
        assert_ne!(digest_of(&[0]), digest_of(&[0, 0]), "zero-word runs");
        // Reading a digest is non-destructive.
        let mut fp = Fingerprint::new();
        fp.push(7);
        let d1 = fp.digest();
        assert_eq!(d1, fp.digest());
        fp.push(8);
        assert_ne!(d1, fp.digest());
    }

    #[test]
    fn byte_absorption_is_prefix_free_and_padding_safe() {
        let digest_of = |parts: &[&[u8]]| {
            let mut fp = Fingerprint::new();
            for p in parts {
                fp.push_bytes(p);
            }
            fp.digest()
        };
        assert_eq!(digest_of(&[b"abc"]), digest_of(&[b"abc"]));
        // Re-bracketing a byte stream changes the digest.
        assert_ne!(digest_of(&[b"ab", b"c"]), digest_of(&[b"abc"]));
        assert_ne!(digest_of(&[b"a", b"bc"]), digest_of(&[b"ab", b"c"]));
        // Zero padding of the last partial word cannot be confused with
        // real trailing NULs.
        assert_ne!(digest_of(&[b"abc"]), digest_of(&[b"abc\0"]));
        assert_ne!(digest_of(&[b""]), digest_of(&[b"\0"]));
        // Word-aligned and unaligned lengths all distinct.
        let mut seen = std::collections::HashSet::new();
        let data = [7u8; 40];
        for len in 0..=data.len() {
            assert!(seen.insert(digest_of(&[&data[..len]])), "len {len}");
        }
        // push_str is push_bytes over UTF-8.
        let mut a = Fingerprint::new();
        a.push_str("héllo");
        let mut b = Fingerprint::new();
        b.push_bytes("héllo".as_bytes());
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn fingerprint_has_no_collisions_on_a_dense_grid() {
        // Single-word digests over a dense grid plus all two-word digests
        // over a small grid: every digest distinct.
        let mut seen = std::collections::HashSet::new();
        for w in 0..4_096u64 {
            let mut fp = Fingerprint::new();
            fp.push(w);
            assert!(seen.insert(fp.digest()), "collision at word {w}");
        }
        for a in 0..64u64 {
            for b in 0..64u64 {
                let mut fp = Fingerprint::new();
                fp.push(a);
                fp.push(b);
                assert!(seen.insert(fp.digest()), "collision at pair ({a},{b})");
            }
        }
    }

    #[test]
    fn block_absorption_matches_single_pushes() {
        // block4 on an aligned or unaligned stream equals the same
        // words pushed singly (after the same align4 padding).
        for prefix in 0..4u64 {
            let mut by_block = Fingerprint::new();
            let mut by_push = Fingerprint::new();
            for p in 0..prefix {
                by_block.push(p);
                by_push.push(p);
            }
            let mut blk = by_block.block4();
            blk.push4([10, 20, 30, 40]);
            blk.push4([50, 60, 70, 80]);
            blk.finish();
            by_push.align4();
            for w in [10, 20, 30, 40, 50, 60, 70, 80] {
                by_push.push(w);
            }
            assert_eq!(by_block.digest(), by_push.digest(), "prefix {prefix}");
        }
    }

    #[test]
    fn below_is_in_range_and_hits_every_residue() {
        let mut rng = Rng::seed_from_u64(42);
        let mut hits = [0usize; 7];
        for _ in 0..7_000 {
            hits[rng.below(7) as usize] += 1;
        }
        for (i, &h) in hits.iter().enumerate() {
            assert!(h > 700, "residue {i} undersampled: {h}");
        }
    }

    #[test]
    fn shuffle_produces_a_permutation() {
        let mut rng = Rng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50! makes identity absurd");
    }

    #[test]
    fn ranges_cover_bounds() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..200 {
            let x = rng.range_i64(-3, 4);
            assert!((-3..4).contains(&x));
            let y = rng.range_usize(2, 5);
            assert!((2..5).contains(&y));
        }
        assert!(rng.choose(&[] as &[u8]).is_none());
        assert_eq!(rng.choose(&[9]), Some(&9));
    }
}
