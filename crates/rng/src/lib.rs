//! Self-contained deterministic pseudo-randomness for the DCA workspace.
//!
//! Everything random in this repository — the shuffled iteration schedules
//! of the dynamic stage, generated test programs, synthetic cost profiles —
//! must be (a) reproducible from a seed and (b) free of external crate
//! dependencies, since the build environment is offline. This crate
//! provides both: a [splitmix64](https://prng.di.unimi.it/splitmix64.c)
//! stream generator ([`Rng`]) and the matching stateless finalizer
//! ([`mix64`]) used to derive per-loop/per-invocation seeds without the
//! additive collisions a plain `seed + a + b` scheme suffers.

#![warn(missing_docs)]

/// The golden-ratio increment of the splitmix64 stream.
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The splitmix64 finalizer: a bijective avalanche mix of one 64-bit word.
///
/// Distinct inputs always map to distinct outputs (the function is a
/// permutation of `u64`), and nearby inputs are scattered apart — exactly
/// what seed derivation from small structured components needs.
#[must_use]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, fast, seeded PRNG (the splitmix64 stream).
///
/// Not cryptographic; statistically solid for shuffles and test-case
/// generation, and fully deterministic per seed on every platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator whose stream is a pure function of `seed`.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        mix64(self.state)
    }

    /// A uniform value in `[0, n)` (unbiased via rejection sampling).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        // Reject the final partial block so every residue is equally likely.
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// A uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// A uniform `i64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi.abs_diff(lo)) as i64
    }

    /// A uniform `u64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// A fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// An unbiased Fisher–Yates shuffle of `items`.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// A uniformly random element of `items`, or `None` when empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below(items.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        let mut c = Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn mix64_is_injective_on_a_dense_grid() {
        let mut seen = std::collections::HashSet::new();
        for x in 0..10_000u64 {
            assert!(seen.insert(mix64(x)));
        }
        // Nearby inputs land far apart.
        assert!(mix64(0).abs_diff(mix64(1)) > 1 << 32);
    }

    #[test]
    fn below_is_in_range_and_hits_every_residue() {
        let mut rng = Rng::seed_from_u64(42);
        let mut hits = [0usize; 7];
        for _ in 0..7_000 {
            hits[rng.below(7) as usize] += 1;
        }
        for (i, &h) in hits.iter().enumerate() {
            assert!(h > 700, "residue {i} undersampled: {h}");
        }
    }

    #[test]
    fn shuffle_produces_a_permutation() {
        let mut rng = Rng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50! makes identity absurd");
    }

    #[test]
    fn ranges_cover_bounds() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..200 {
            let x = rng.range_i64(-3, 4);
            assert!((-3..4).contains(&x));
            let y = rng.range_usize(2, 5);
            assert!((2..5).contains(&y));
        }
        assert!(rng.choose(&[] as &[u8]).is_none());
        assert_eq!(rng.choose(&[9]), Some(&9));
    }
}
